package simmpi

import (
	"math/rand"
	"testing"

	"maia/internal/machine"
	"maia/internal/simfault"
	"maia/internal/vclock"
)

// The clock-vector replay's exactness properties: asymmetric algorithms
// and per-rank script shapes must reproduce the goroutine engine's
// virtual time BIT for bit, and the refusal conditions must keep the
// slow engine reachable.

// randomNonPow2 builds a homogeneous world with a non-power-of-two rank
// count — the reduce+bcast Allreduce regime.
func randomNonPow2(rng *rand.Rand) Config {
	sizes := []int{3, 5, 6, 7, 9, 12, 24}
	n := sizes[rng.Intn(len(sizes))]
	if rng.Intn(2) == 0 {
		return Config{Ranks: HostPlacement(n, 1+rng.Intn(2))}
	}
	return Config{Ranks: PhiPlacement(machine.Phi0, n, 1+rng.Intn(4))}
}

// TestVecReplayMatchesFullRun is the asymmetric-algorithm exactness
// property: 300 randomized trials aimed at the combinations the scalar
// replay refuses — binomial Bcast (short) and van de Geijn Bcast (past
// BcastLongBytes), plus the non-power-of-two reduce+bcast Allreduce —
// must match the goroutine engine bit for bit.
func TestVecReplayMatchesFullRun(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 300; trial++ {
		var cfg Config
		var kind CollectiveKind
		var msg int
		switch trial % 3 {
		case 0: // binomial Bcast on any world shape
			cfg = randomHomogeneous(rng)
			kind = BcastKind
			msg = 1 + rng.Intn(32<<10)
		case 1: // long-message Bcast: the van de Geijn scatter+allgather
			cfg = randomHomogeneous(rng)
			kind = BcastKind
			msg = 512<<10 + 1 + rng.Intn(1<<20) // past the default BcastLongBytes
		default: // non-power-of-two Allreduce: reduce+bcast
			cfg = randomNonPow2(rng)
			kind = AllreduceKind
			msg = 1 + rng.Intn(32<<10)
		}
		iters := 1 + rng.Intn(3)
		fast, err := CollectiveTime(cfg, kind, msg, iters)
		if err != nil {
			t.Fatalf("trial %d: fast: %v", trial, err)
		}
		var slow vclock.Time
		withSlowPath(func() {
			slow, err = CollectiveTime(cfg, kind, msg, iters)
		})
		if err != nil {
			t.Fatalf("trial %d: slow: %v", trial, err)
		}
		if fast != slow {
			t.Fatalf("trial %d (n=%d dev=%v kind=%v msg=%d iters=%d): fast %v, slow %v",
				trial, len(cfg.Ranks), cfg.Ranks[0].Device, kind, msg, iters, fast, slow)
		}
	}
}

// randomVecScript builds a script exercising the shapes only the clock
// vector can replay: per-rank compute, per-rank Ring/Pair payloads,
// shifted rings, Bcast steps, and whatever Allreduce regime the world
// size implies.
func randomVecScript(rng *rand.Rand, n int) []SeqStep {
	steps := make([]SeqStep, 0, 4)
	nsteps := 1 + rng.Intn(4)
	for k := 0; k < nsteps; k++ {
		var st SeqStep
		if rng.Intn(2) == 0 {
			per := make([]vclock.Time, n)
			for i := range per {
				per[i] = vclock.Time(rng.Intn(2000)) * vclock.Microsecond
			}
			st.ComputePer = per
		} else {
			st.Compute = vclock.Time(rng.Intn(2000)) * vclock.Microsecond
		}
		switch rng.Intn(5) {
		case 0:
			st.Kind = BcastKind
			st.Bytes = 1 + rng.Intn(16<<10)
		case 1:
			st.Kind = AllreduceKind
			st.Bytes = 8 * (1 + rng.Intn(1<<10))
		case 2:
			st.Kind = RingKind
			st.Shift = rng.Intn(2 * n)
			st.Bytes = 1 + rng.Intn(16<<10)
			if rng.Intn(2) == 0 {
				bp := make([]int, n)
				for i := range bp {
					bp[i] = 64 + rng.Intn(16<<10)
				}
				st.BytesPer = bp
			}
		case 3:
			if n%2 == 0 {
				st.Kind = PairKind
				st.Bytes = 1 + rng.Intn(16<<10)
				if rng.Intn(2) == 0 {
					bp := make([]int, n)
					for i := range bp {
						bp[i] = 64 + rng.Intn(16<<10)
					}
					st.BytesPer = bp
				}
			} else {
				st.Kind = AllgatherKind
				st.Bytes = 1 + rng.Intn(8<<10)
			}
		default:
			st.Kind = ComputeStep
		}
		steps = append(steps, st)
	}
	return steps
}

// TestVecSeqScriptsMatchFullRun pins the script-level vector replay —
// the OVERFLOW step shape (per-rank compute, per-rank fringe sizes,
// shifted rings, a residual allreduce) — against the goroutine engine
// over randomized worlds and scripts.
func TestVecSeqScriptsMatchFullRun(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 120; trial++ {
		var cfg Config
		if trial%2 == 0 {
			cfg = randomHomogeneous(rng)
		} else {
			cfg = randomNonPow2(rng)
		}
		n := len(cfg.Ranks)
		steps := randomVecScript(rng, n)
		iters := 1 + rng.Intn(3)
		fast, err := SeqTime(cfg, steps, iters)
		if err != nil {
			t.Fatalf("trial %d: fast: %v", trial, err)
		}
		var slow vclock.Time
		withSlowPath(func() {
			slow, err = SeqTime(cfg, steps, iters)
		})
		if err != nil {
			t.Fatalf("trial %d: slow: %v", trial, err)
		}
		if fast != slow {
			t.Fatalf("trial %d (n=%d dev=%v steps=%+v iters=%d): fast %v, slow %v",
				trial, n, cfg.Ranks[0].Device, steps, iters, fast, slow)
		}
	}
}

// TestVecSeqReplayEngages asserts the vector script path actually
// prices the OVERFLOW shapes in closed form (not via goroutine
// fallback): per-rank compute and per-rank ring payloads on flat
// symmetric worlds must be accepted by RepeatSeq.
func TestVecSeqReplayEngages(t *testing.T) {
	withFastPath(func() {
		w, err := NewWorld(Config{Ranks: HostPlacement(5, 1), SizeOnlyPayloads: true})
		if err != nil {
			t.Fatal(err)
		}
		steps := []SeqStep{
			{ComputePer: []vclock.Time{1, 2, 3, 4, 5}, Kind: ComputeStep},
			{Kind: RingKind, Shift: 2, BytesPer: []int{64, 128, 256, 512, 1024}},
			{Kind: AllreduceKind, Bytes: 8},
		}
		if _, ok := w.RepeatSeq(steps, 1); !ok {
			t.Error("vector replay refused the OVERFLOW step shape on a flat symmetric world")
		}
	})
}

// TestVecReplayRefusals pins the vector replay's fallback conditions:
// heterogeneous placement, fault plans, single-rank worlds, odd-size
// PairKind, per-rank payloads on rack worlds, and the escape hatch all
// keep the goroutine engine reachable.
func TestVecReplayRefusals(t *testing.T) {
	prev := noFastPathEnv
	noFastPathEnv = false
	defer func() { noFastPathEnv = prev }()
	bcast := []SeqStep{{Kind: BcastKind, Bytes: 64}}

	mixed := Config{Ranks: append(HostPlacement(2, 1), PhiPlacement(machine.Phi0, 2, 1)...)}
	wm, err := NewWorld(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := wm.RepeatSeq(bcast, 1); ok {
		t.Error("vector replay accepted a heterogeneous world")
	}
	faulted, err := NewWorld(Config{Ranks: HostPlacement(4, 1)}, WithFaultPlan(simfault.PhiStraggler()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := faulted.RepeatSeq(bcast, 1); ok {
		t.Error("vector replay accepted a faulted world")
	}
	w1, err := NewWorld(Config{Ranks: HostPlacement(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w1.RepeatSeq(bcast, 1); ok {
		t.Error("vector replay accepted a single-rank world")
	}
	odd, err := NewWorld(Config{Ranks: HostPlacement(5, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := odd.RepeatSeq([]SeqStep{{Kind: PairKind, Bytes: 64}}, 1); ok {
		t.Error("vector replay paired id^1 in an odd world")
	}
	rack, err := NewWorld(Config{
		Ranks:  RackPlacement(machine.Host, 4, 2, 1),
		Fabric: machine.NewRackFabric(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	perRank := []SeqStep{{Kind: PairKind, BytesPer: []int{64, 128}}}
	if _, ok := rack.RepeatSeq(perRank, 1); ok {
		t.Error("rack replay accepted per-rank payload sizes")
	}
	w, err := NewWorld(Config{Ranks: HostPlacement(4, 1)})
	if err != nil {
		t.Fatal(err)
	}
	withSlowPath(func() {
		if _, ok := w.RepeatSeq(bcast, 1); ok {
			t.Error("vector replay ignored the MAIA_NO_FASTPATH escape hatch")
		}
	})
}

// TestVecReplayAllocsIndependentOfIters pins the vector replay's
// defining property: pricing 4096 binomial broadcasts must not
// allocate more than pricing 4 — state is one clock vector, not
// per-iteration messages.
func TestVecReplayAllocsIndependentOfIters(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; bound asserted in normal builds")
	}
	repeatAllocs := func(iters int) float64 {
		w, err := NewWorld(Config{Ranks: HostPlacement(6, 1)})
		if err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(5, func() {
			if _, ok := w.RepeatOp(BcastKind, 4096, iters); !ok {
				t.Fatal("vector replay refused a homogeneous Bcast")
			}
		})
	}
	var base, more float64
	withFastPath(func() { base, more = repeatAllocs(4), repeatAllocs(4096) })
	if more > base {
		t.Errorf("vector replay allocs grew with iters: %v at 4 iters, %v at 4096", base, more)
	}
}

// TestRefusedCombosFallBackIdentically pins the other half of the
// refusal contract: combinations the replay refuses — heterogeneous
// placement and faulted worlds, crossed with non-power-of-two sizes —
// answer through the goroutine engine whether or not the fast path is
// enabled, byte-identically. A regression that made a refused world
// sneak into the replay (or perturbed the fallback) trips this.
func TestRefusedCombosFallBackIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	kinds := []CollectiveKind{BcastKind, AllreduceKind, AllgatherKind, AlltoallKind}
	for trial := 0; trial < 40; trial++ {
		var cfg Config
		var opts []Option
		if trial%2 == 0 {
			// Heterogeneous: a host half and a Phi half, odd total size.
			cfg = Config{Ranks: append(HostPlacement(2, 1), PhiPlacement(machine.Phi0, 1+rng.Intn(3), 2)...)}
		} else {
			cfg = randomNonPow2(rng)
			opts = append(opts, WithFaultPlan(simfault.PhiStraggler()))
		}
		kind := kinds[rng.Intn(len(kinds))]
		msg := 1 + rng.Intn(16<<10)
		var fast, slow vclock.Time
		var errF, errS error
		withFastPath(func() { fast, errF = CollectiveTime(cfg, kind, msg, 1, opts...) })
		withSlowPath(func() { slow, errS = CollectiveTime(cfg, kind, msg, 1, opts...) })
		if errF != nil || errS != nil {
			t.Fatalf("trial %d: fast err %v, slow err %v", trial, errF, errS)
		}
		if fast != slow {
			t.Fatalf("trial %d (n=%d kind=%v msg=%d): fast-path-on %v != off %v",
				trial, len(cfg.Ranks), kind, msg, fast, slow)
		}
	}
}
