package simmpi

import (
	"fmt"

	"maia/internal/machine"
	"maia/internal/vclock"
)

// This file holds the IMB-style micro-benchmarks behind Figures 10–14,
// plus the memory-footprint model that explains why MPI_Alltoall (and NPB
// FT) could not run at large sizes on the Phi's 8 GB card.

// RingBandwidth runs the Figure 10 benchmark: every rank sends a message
// to its right neighbor and receives one from its left neighbor, for
// iters iterations. It returns the per-rank bandwidth in GB/s.
func RingBandwidth(cfg Config, msgBytes, iters int, opts ...Option) (float64, error) {
	// The benchmark never reads payload contents, so the transport can
	// run in size-only mode; the measured virtual times are unchanged.
	cfg.SizeOnlyPayloads = true
	w, err := NewWorld(cfg, opts...)
	if err != nil {
		return 0, err
	}
	// Symmetric homogeneous rings are priced in closed form; tracing-on
	// runs keep the full path so per-operation traces are unchanged.
	if w.cfg.Tracer == nil {
		if total, ok := w.RepeatSendrecv(msgBytes, iters); ok {
			t := total.Seconds()
			if t <= 0 {
				return 0, fmt.Errorf("simmpi: ring benchmark consumed no virtual time")
			}
			return float64(msgBytes) * float64(iters) / t / 1e9, nil
		}
	}
	payload := make([]byte, msgBytes)
	err = w.Run(func(r *Rank) {
		n := r.Size()
		right := (r.ID() + 1) % n
		left := (r.ID() - 1 + n) % n
		for i := 0; i < iters; i++ {
			Recycle(r.Sendrecv(right, 0, payload, left, 0))
		}
	})
	if err != nil {
		return 0, err
	}
	t := w.MaxTime().Seconds()
	if t <= 0 {
		return 0, fmt.Errorf("simmpi: ring benchmark consumed no virtual time")
	}
	return float64(msgBytes) * float64(iters) / t / 1e9, nil
}

// CollectiveKind selects a collective for CollectiveTime.
type CollectiveKind int

const (
	// BcastKind measures MPI_Bcast (Figure 11).
	BcastKind CollectiveKind = iota
	// AllreduceKind measures MPI_Allreduce (Figure 12).
	AllreduceKind
	// AllgatherKind measures MPI_Allgather (Figure 13).
	AllgatherKind
	// AlltoallKind measures MPI_AlltoAll (Figure 14).
	AlltoallKind
	// PairKind is a Sendrecv exchange with partner id^1 — the halo
	// shape of the NPB communication scripts. Valid in SeqStep scripts,
	// not in CollectiveTime.
	PairKind
	// RingKind is a Sendrecv exchange sending to (id+1)%n and receiving
	// from (id-1+n)%n — the shifted-neighbor halo of MG's level sweeps
	// and BT/SP's directional face exchanges. Works on any world of two
	// or more ranks (no parity constraint, unlike PairKind). Valid in
	// SeqStep scripts, not in CollectiveTime.
	RingKind
	// ComputeStep is a SeqStep that performs no communication.
	ComputeStep
)

// String implements fmt.Stringer with the paper's MPI function names.
func (k CollectiveKind) String() string {
	switch k {
	case BcastKind:
		return "MPI_Bcast"
	case AllreduceKind:
		return "MPI_Allreduce"
	case AllgatherKind:
		return "MPI_Allgather"
	case AlltoallKind:
		return "MPI_AlltoAll"
	case PairKind:
		return "MPI_Sendrecv"
	case RingKind:
		return "MPI_Sendrecv(ring)"
	case ComputeStep:
		return "compute"
	default:
		return fmt.Sprintf("CollectiveKind(%d)", int(k))
	}
}

// CollectiveTime measures the average virtual time of one collective
// operation at the given message size (per-rank payload, as in IMB),
// averaged over iters repetitions.
func CollectiveTime(cfg Config, kind CollectiveKind, msgBytes, iters int, opts ...Option) (vclock.Time, error) {
	// Collective results are recycled unread (only virtual time is
	// measured), so size-only transport applies here too.
	cfg.SizeOnlyPayloads = true
	w, err := NewWorld(cfg, opts...)
	if err != nil {
		return 0, err
	}
	// Symmetric repetitions are priced in closed form; tracing-on runs
	// keep the full path so per-operation traces are unchanged.
	if w.cfg.Tracer == nil {
		if total, ok := w.RepeatOp(kind, msgBytes, iters); ok {
			return total / vclock.Time(iters), nil
		}
	}
	err = w.Run(func(r *Rank) {
		switch kind {
		case BcastKind:
			payload := make([]byte, msgBytes)
			for i := 0; i < iters; i++ {
				out := r.Bcast(0, payload)
				// On the root the result aliases payload (which the next
				// iteration reuses); only non-root copies are dead here.
				if r.ID() != 0 {
					Recycle(out)
				}
			}
		case AllreduceKind:
			elems := msgBytes / 8
			if elems < 1 {
				elems = 1
			}
			vec := make([]float64, elems)
			for i := 0; i < iters; i++ {
				RecycleF64(r.Allreduce(vec, OpSum))
			}
		case AllgatherKind:
			payload := make([]byte, msgBytes)
			for i := 0; i < iters; i++ {
				Recycle(r.Allgather(payload))
			}
		case AlltoallKind:
			buf := make([]byte, r.Size()*msgBytes)
			for i := 0; i < iters; i++ {
				Recycle(r.Alltoall(buf, msgBytes))
			}
		default:
			panic(fmt.Sprintf("simmpi: unknown collective %d", int(kind)))
		}
	})
	if err != nil {
		return 0, err
	}
	return w.MaxTime() / vclock.Time(iters), nil
}

// Memory-footprint model (Section 6.4.5 / Figure 14; Section 6.8.2 /
// Figure 20). Intel MPI on the Phi carries a substantial fixed per-rank
// footprint, and Alltoall adds send+receive staging buffers proportional
// to ranks x block size.
const (
	// baseRankBytes is the fixed per-rank MPI footprint.
	baseRankBytes = 25 << 20
	// alltoallBufFactor covers the send buffer, the receive buffer, and
	// the library's internal staging copy.
	alltoallBufFactor = 3
)

// AlltoallFootprint estimates the total memory an n-rank Alltoall with
// the given per-block size needs on one device.
func AlltoallFootprint(ranks, blockBytes int) int64 {
	perRank := int64(baseRankBytes) + int64(2*alltoallBufFactor)*int64(ranks)*int64(blockBytes)
	return int64(ranks) * perRank
}

// AlltoallFeasible reports whether the Alltoall fits in the memory of the
// device all ranks live on. The paper's Figure 14 failure — 236 ranks
// could run only up to 4 KB blocks on the 8 GB card — falls out of the
// footprint model.
func AlltoallFeasible(dev machine.Device, node *machine.Node, ranks, blockBytes int) bool {
	var memBytes int64
	if dev.IsPhi() {
		memBytes = int64(node.PhiProc.MemGB) << 30
	} else {
		memBytes = int64(node.HostMemGB) << 30
	}
	return AlltoallFootprint(ranks, blockBytes) <= memBytes
}
