package simmpi

import (
	"math"
	"math/rand"
	"testing"

	"maia/internal/machine"
	"maia/internal/simfault"
	"maia/internal/vclock"
)

// The rack differential suite: on small two-level worlds (2-8 nodes x
// 1-16 ranks per node) the hierarchical closed-form replay must
// reproduce the goroutine engine's virtual times BIT for bit, mirroring
// repeat_test.go's flat properties. Refusal cases — heterogeneous
// nodes, fault plans, non-power-of-two node counts, asymmetric kinds —
// must fall back to the goroutine engine on both sides.

// randomRack builds a random node-major rack world of identical nodes.
func randomRack(rng *rand.Rand) Config {
	nodeCounts := []int{2, 4, 8}
	perNode := []int{1, 2, 4, 6, 8, 16}
	n := nodeCounts[rng.Intn(len(nodeCounts))]
	r := perNode[rng.Intn(len(perNode))]
	var locs []Location
	switch rng.Intn(3) {
	case 0:
		locs = RackPlacement(machine.Host, n, r, 1+rng.Intn(2))
	case 1:
		locs = RackPlacement(machine.Phi0, n, r, 1+rng.Intn(4))
	default:
		// Mixed host+Phi nodes: heterogeneous WITHIN a node is fine for
		// the replay as long as all nodes are identical.
		half := (r + 1) / 2
		nodeLocs := append(HostPlacement(half, 1), PhiPlacement(machine.Phi0, r-half, 1)...)
		locs = ReplicateNodes(nodeLocs, n)
	}
	return Config{Ranks: locs, Fabric: machine.NewRackFabric(n)}
}

// seqSlow runs a script on the goroutine engine and returns the
// makespan.
func seqSlow(t *testing.T, cfg Config, steps []SeqStep, iters int) vclock.Time {
	t.Helper()
	cfg.SizeOnlyPayloads = true
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RunSeq(steps, iters); err != nil {
		t.Fatal(err)
	}
	return w.MaxTime()
}

// TestRackReplayMatchesFullRun is the headline property: >= 300
// randomized (world x kind x size x iters) trials pin the rack replay
// to the goroutine engine exactly.
func TestRackReplayMatchesFullRun(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	kinds := []CollectiveKind{AllreduceKind, AllgatherKind, AlltoallKind, PairKind}
	trials := 0
	for trials < 320 {
		cfg := randomRack(rng)
		kind := kinds[rng.Intn(len(kinds))]
		msg := 1 + rng.Intn(8<<10)
		if kind == AlltoallKind {
			msg = 1 + rng.Intn(512) // bound the leader aggregates
		}
		iters := 1 + rng.Intn(3)
		steps := []SeqStep{{Kind: kind, Bytes: msg}}
		w, err := NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var fast vclock.Time
		var ok bool
		withFastPath(func() {
			fast, ok = w.RepeatSeq(steps, iters)
		})
		perNode := len(cfg.Ranks) / cfg.Fabric.Nodes
		if !ok {
			if kind != PairKind || perNode%2 == 0 || perNode == 1 {
				t.Fatalf("trial %d: replay refused an eligible world (nodes=%d per=%d kind=%v)",
					trials, cfg.Fabric.Nodes, perNode, kind)
			}
			continue // odd per-node PairKind legitimately falls back
		}
		slow := seqSlow(t, cfg, steps, iters)
		if fast != slow {
			t.Fatalf("trial %d (nodes=%d per=%d dev=%v kind=%v msg=%d iters=%d): fast %v, slow %v",
				trials, cfg.Fabric.Nodes, perNode, cfg.Ranks[0].Device, kind, msg, iters, fast, slow)
		}
		trials++
	}
}

// TestRackReplayScripts covers multi-step scripts with per-local-index
// compute — the OVERFLOW/NPB driver shape.
func TestRackReplayScripts(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 60; trial++ {
		cfg := randomRack(rng)
		perNode := len(cfg.Ranks) / cfg.Fabric.Nodes
		comp := make([]vclock.Time, perNode)
		for j := range comp {
			comp[j] = vclock.Time(rng.Float64()) * 50 * vclock.Microsecond
		}
		steps := []SeqStep{
			{ComputePer: comp, Kind: AlltoallKind, Bytes: 1 + rng.Intn(256)},
			{Compute: 3 * vclock.Microsecond, Kind: AllreduceKind, Bytes: 8},
			{Kind: AllgatherKind, Bytes: 1 + rng.Intn(4<<10)},
		}
		iters := 1 + rng.Intn(3)
		w, err := NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var fast vclock.Time
		var ok bool
		withFastPath(func() {
			fast, ok = w.RepeatSeq(steps, iters)
		})
		if !ok {
			t.Fatalf("trial %d: script replay refused (nodes=%d per=%d)", trial, cfg.Fabric.Nodes, perNode)
		}
		slow := seqSlow(t, cfg, steps, iters)
		if fast != slow {
			t.Fatalf("trial %d (nodes=%d per=%d): fast %v, slow %v",
				trial, cfg.Fabric.Nodes, perNode, fast, slow)
		}
	}
}

// TestRackCollectiveTimeMatches pins the public CollectiveTime entry
// point on rack worlds (the RepeatOp wiring).
func TestRackCollectiveTimeMatches(t *testing.T) {
	cfg := Config{
		Ranks:  RackPlacement(machine.Host, 4, 4, 1),
		Fabric: machine.NewRackFabric(4),
	}
	for _, kind := range []CollectiveKind{AllreduceKind, AllgatherKind, AlltoallKind} {
		var fast, slow vclock.Time
		var err error
		withFastPath(func() {
			fast, err = CollectiveTime(cfg, kind, 512, 3)
		})
		if err != nil {
			t.Fatal(err)
		}
		withSlowPath(func() {
			slow, err = CollectiveTime(cfg, kind, 512, 3)
		})
		if err != nil {
			t.Fatal(err)
		}
		if fast != slow {
			t.Errorf("%v: fast %v != slow %v", kind, fast, slow)
		}
	}
}

// TestRackReplayRefusals pins every rack fallback condition.
func TestRackReplayRefusals(t *testing.T) {
	prev := noFastPathEnv
	noFastPathEnv = false
	defer func() { noFastPathEnv = prev }()

	rack := Config{Ranks: RackPlacement(machine.Host, 4, 4, 1), Fabric: machine.NewRackFabric(4)}
	w, err := NewWorld(rack)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := w.Rack(); !ok {
		t.Fatal("node-major fabric world not detected as rack")
	}
	step := []SeqStep{{Kind: AllgatherKind, Bytes: 64}}
	if _, ok := w.RepeatSeq(step, 1); !ok {
		t.Error("refused a healthy power-of-two rack")
	}
	if _, ok := w.RepeatSeq([]SeqStep{{Kind: BcastKind, Bytes: 64}}, 1); ok {
		t.Error("replayed the asymmetric hierarchical Bcast")
	}

	// Non-power-of-two node count.
	odd, err := NewWorld(Config{Ranks: RackPlacement(machine.Host, 3, 4, 1), Fabric: machine.NewRackFabric(3)})
	if err != nil {
		t.Fatal(err)
	}
	if odd.rack == nil {
		t.Fatal("3-node world not detected as rack")
	}
	if _, ok := odd.RepeatSeq(step, 1); ok {
		t.Error("replayed a non-power-of-two node count")
	}

	// Heterogeneous speeds across nodes.
	locs := append(RackPlacement(machine.Host, 1, 4, 1), ReplicateNodes(PhiPlacement(machine.Phi0, 4, 1), 1)...)
	for i := range locs[4:] {
		locs[4+i].Node = 1
	}
	het, err := NewWorld(Config{Ranks: locs, Fabric: machine.NewRackFabric(2)})
	if err != nil {
		t.Fatal(err)
	}
	if het.rack == nil {
		t.Fatal("heterogeneous two-node world not detected as rack")
	}
	if _, ok := het.RepeatSeq(step, 1); ok {
		t.Error("replayed nodes with different per-node layouts")
	}

	// Faulted plans refuse the fast path but still run hierarchically.
	faulted, err := NewWorld(rack, WithFaultPlan(simfault.PhiStraggler()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := faulted.RepeatSeq(step, 1); ok {
		t.Error("replayed a faulted rack world")
	}
	if err := faulted.RunSeq(step, 1); err != nil {
		t.Errorf("goroutine fallback on faulted rack: %v", err)
	}
	if faulted.MaxTime() <= 0 {
		t.Error("faulted rack run consumed no virtual time")
	}

	// Odd ranks-per-node PairKind mixes intra/inter pairs.
	odd3, err := NewWorld(Config{Ranks: RackPlacement(machine.Host, 2, 3, 1), Fabric: machine.NewRackFabric(2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := odd3.RepeatSeq([]SeqStep{{Kind: PairKind, Bytes: 64}}, 1); ok {
		t.Error("replayed PairKind with odd ranks per node")
	}

	// The escape hatch.
	withSlowPath(func() {
		if _, ok := w.RepeatSeq(step, 1); ok {
			t.Error("ignored the MAIA_NO_FASTPATH escape hatch")
		}
	})

	// Non-node-major placements with a fabric stay flat.
	scattered := Config{
		Ranks:  []Location{{machine.Host, 1, 0}, {machine.Host, 1, 1}, {machine.Host, 1, 0}, {machine.Host, 1, 1}},
		Fabric: machine.NewRackFabric(2),
	}
	ws, err := NewWorld(scattered)
	if err != nil {
		t.Fatal(err)
	}
	if ws.rack != nil {
		t.Error("scattered placement detected as node-major rack")
	}
}

// TestRackFabricValidation pins the Node bounds check.
func TestRackFabricValidation(t *testing.T) {
	locs := RackPlacement(machine.Host, 4, 2, 1)
	if _, err := NewWorld(Config{Ranks: locs, Fabric: machine.NewRackFabric(2)}); err == nil {
		t.Error("accepted node indices outside the fabric")
	}
}

// TestHierContentCorrectness checks the hierarchical collectives move
// real bytes correctly in content-preserving mode: Allgather and
// Alltoall reassemble exactly, Allreduce matches the flat result
// (exactly for Max, to rounding for Sum whose combine order differs).
func TestHierContentCorrectness(t *testing.T) {
	cfg := Config{Ranks: RackPlacement(machine.Host, 4, 3, 1), Fabric: machine.NewRackFabric(4)}
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := w.Size()
	err = w.Run(func(r *Rank) {
		id := r.ID()
		// Allgather: rank i contributes [i, i].
		block := []byte{byte(id), byte(id)}
		got := r.Allgather(block)
		for i := 0; i < n; i++ {
			if got[2*i] != byte(i) || got[2*i+1] != byte(i) {
				panic("Allgather block mismatch")
			}
		}
		// Alltoall: rank i sends block (i<<4)|j to rank j.
		buf := make([]byte, n)
		for j := 0; j < n; j++ {
			buf[j] = byte(id<<4 | j)
		}
		out := r.Alltoall(buf, 1)
		for i := 0; i < n; i++ {
			if out[i] != byte(i<<4|id) {
				panic("Alltoall block mismatch")
			}
		}
		// Allreduce Max and Sum over rank-dependent vectors.
		vec := []float64{float64(id), -float64(id)}
		mx := r.Allreduce(vec, OpMax)
		if mx[0] != float64(n-1) || mx[1] != 0 {
			panic("Allreduce max wrong")
		}
		sum := r.Allreduce(vec, OpSum)
		want := float64(n*(n-1)) / 2
		if math.Abs(sum[0]-want) > 1e-9 || math.Abs(sum[1]+want) > 1e-9 {
			panic("Allreduce sum wrong")
		}
		// Bcast from a non-leader root.
		payload := make([]byte, 5)
		if id == 5 {
			copy(payload, "hello")
		}
		got = r.Bcast(5, payload)
		if string(got[:5]) != "hello" {
			panic("Bcast payload mismatch")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRackMonotoneInNodes is a sanity property of the fabric model: the
// same collective over more nodes (same total work per rank) costs more
// virtual time.
func TestRackMonotoneInNodes(t *testing.T) {
	var prev vclock.Time
	for _, nodes := range []int{2, 4, 8, 16} {
		cfg := Config{Ranks: RackPlacement(machine.Host, nodes, 4, 1), Fabric: machine.NewRackFabric(nodes)}
		tm, err := CollectiveTime(cfg, AllreduceKind, 64, 1)
		if err != nil {
			t.Fatal(err)
		}
		if tm <= prev {
			t.Errorf("Allreduce at %d nodes = %v, not above %v", nodes, tm, prev)
		}
		prev = tm
	}
}
