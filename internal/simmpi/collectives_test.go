package simmpi

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"maia/internal/machine"
	"maia/internal/pcie"
	"maia/internal/vclock"
)

// runWorld is a test helper that builds a host world of n ranks and runs
// body, failing the test on error.
func runWorld(t *testing.T, n int, body func(r *Rank)) *World {
	t.Helper()
	w, err := NewWorld(hostCfg(n))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(body); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBcastAllSizesAndRoots(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16, 31} {
		for _, root := range []int{0, n - 1, n / 2} {
			payload := []byte("broadcast me")
			runWorld(t, n, func(r *Rank) {
				in := make([]byte, len(payload))
				if r.ID() == root {
					copy(in, payload)
				}
				out := r.Bcast(root, in)
				if !bytes.Equal(out, payload) {
					panic("bcast corrupted payload")
				}
			})
		}
	}
}

// Long broadcasts take the van de Geijn path and still deliver the exact
// payload, for awkward sizes and roots.
func TestBcastLongMessage(t *testing.T) {
	for _, n := range []int{3, 4, 7, 16} {
		for _, size := range []int{1 << 20, 1<<20 + 13} {
			root := n / 2
			payload := make([]byte, size)
			for i := range payload {
				payload[i] = byte(i * 31)
			}
			runWorld(t, n, func(r *Rank) {
				in := make([]byte, size)
				if r.ID() == root {
					copy(in, payload)
				}
				out := r.Bcast(root, in)
				if !bytes.Equal(out, payload) {
					panic("long bcast corrupted payload")
				}
			})
		}
	}
}

// The Cart3D case (Section 6.4.2): a 56 MB-class broadcast is much
// cheaper under the long algorithm than under a pure binomial tree.
func TestBcastLongAlgorithmPays(t *testing.T) {
	const m = 8 << 20
	long, err := CollectiveTime(Config{Ranks: HostPlacement(16, 1)}, BcastKind, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	binomialOnly, err := CollectiveTime(Config{
		Ranks: HostPlacement(16, 1), BcastLongBytes: 1 << 30,
	}, BcastKind, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := binomialOnly.Seconds() / long.Seconds(); ratio < 1.5 {
		t.Fatalf("van de Geijn gain = %.2fx, want >= 1.5x", ratio)
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 13} {
		want := float64(n * (n - 1) / 2)
		runWorld(t, n, func(r *Rank) {
			res := r.Reduce(0, []float64{float64(r.ID()), 1}, OpSum)
			if r.ID() == 0 {
				if res[0] != want || res[1] != float64(n) {
					panic("reduce wrong")
				}
			} else if res != nil {
				panic("non-root got a result")
			}
		})
	}
}

func TestAllreduceMatchesReduce(t *testing.T) {
	// Property: for random vectors, Allreduce equals the rank-0 Reduce
	// result, on every rank, for both power-of-two and general sizes.
	f := func(seed uint64, nRaw, lenRaw uint8) bool {
		n := int(nRaw%9) + 1    // 1..9 ranks
		l := int(lenRaw%16) + 1 // 1..16 elements
		rng := vclock.NewRNG(seed)
		inputs := make([][]float64, n)
		for i := range inputs {
			inputs[i] = make([]float64, l)
			for j := range inputs[i] {
				inputs[i][j] = rng.Float64()*2 - 1
			}
		}
		want := make([]float64, l)
		for _, in := range inputs {
			OpSum(want, in)
		}
		ok := true
		w, err := NewWorld(hostCfg(n))
		if err != nil {
			return false
		}
		err = w.Run(func(r *Rank) {
			got := r.Allreduce(inputs[r.ID()], OpSum)
			for j := range got {
				if math.Abs(got[j]-want[j]) > 1e-12 {
					ok = false
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// All ranks get bit-identical Allreduce results (fixed combine order).
func TestAllreduceIdenticalAcrossRanks(t *testing.T) {
	n := 8
	results := make([][]float64, n)
	runWorld(t, n, func(r *Rank) {
		v := []float64{1.0 / float64(r.ID()+1), float64(r.ID()) * 0.1}
		results[r.ID()] = r.Allreduce(v, OpSum)
	})
	for i := 1; i < n; i++ {
		for j := range results[0] {
			if results[i][j] != results[0][j] {
				t.Fatalf("rank %d result differs in element %d: %v vs %v",
					i, j, results[i][j], results[0][j])
			}
		}
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	n := 6
	runWorld(t, n, func(r *Rank) {
		x := float64(r.ID())
		mx := r.Allreduce([]float64{x}, OpMax)[0]
		mn := r.Allreduce([]float64{x}, OpMin)[0]
		if mx != float64(n-1) || mn != 0 {
			panic("max/min wrong")
		}
	})
}

// Allgather correctness for both algorithms: small power-of-two payloads
// take recursive doubling, everything else takes the ring.
func TestAllgatherBothAlgorithms(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 3, 5, 12} {
		for _, m := range []int{1, 64, 2048, 4096, 9000} {
			runWorld(t, n, func(r *Rank) {
				block := bytes.Repeat([]byte{byte(r.ID() + 1)}, m)
				out := r.Allgather(block)
				if len(out) != n*m {
					panic("allgather output size wrong")
				}
				for rank := 0; rank < n; rank++ {
					for i := 0; i < m; i++ {
						if out[rank*m+i] != byte(rank+1) {
							panic("allgather block misplaced")
						}
					}
				}
			})
		}
	}
}

// Figure 13's step: on a power-of-two world the per-op time jumps when
// the payload crosses the algorithm switch (recursive doubling -> ring).
func TestAllgatherAlgorithmSwitchJump(t *testing.T) {
	cfg := phiCfg(64, 1)
	tSmall, err := CollectiveTime(cfg, AllgatherKind, 2048, 2)
	if err != nil {
		t.Fatal(err)
	}
	tBig, err := CollectiveTime(cfg, AllgatherKind, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Doubling the payload under one algorithm at most doubles the time;
	// the switch must produce a super-2x jump.
	if ratio := tBig.Seconds() / tSmall.Seconds(); ratio < 2.2 {
		t.Fatalf("no algorithm-switch jump: 4KB/2KB time ratio = %.2f", ratio)
	}
}

func TestAlltoall(t *testing.T) {
	for _, n := range []int{1, 2, 4, 5, 9} {
		const m = 16
		runWorld(t, n, func(r *Rank) {
			// Block for rank d is filled with (sender, dest) so any
			// misrouting is detectable.
			buf := make([]byte, n*m)
			for d := 0; d < n; d++ {
				for i := 0; i < m; i += 2 {
					buf[d*m+i] = byte(r.ID())
					buf[d*m+i+1] = byte(d)
				}
			}
			out := r.Alltoall(buf, m)
			for s := 0; s < n; s++ {
				for i := 0; i < m; i += 2 {
					if out[s*m+i] != byte(s) || out[s*m+i+1] != byte(r.ID()) {
						panic("alltoall misrouted a block")
					}
				}
			}
		})
	}
}

func TestAlltoallBadBuffer(t *testing.T) {
	w, _ := NewWorld(hostCfg(2))
	if err := w.Run(func(r *Rank) {
		r.Alltoall(make([]byte, 3), 2) // wrong length
	}); err == nil {
		t.Fatal("bad buffer accepted")
	}
}

func TestGatherScatter(t *testing.T) {
	for _, n := range []int{1, 2, 6} {
		root := n / 2
		runWorld(t, n, func(r *Rank) {
			got := r.Gather(root, []byte{byte(r.ID()), byte(r.ID() + 100)})
			if r.ID() == root {
				for rank := 0; rank < n; rank++ {
					if got[2*rank] != byte(rank) || got[2*rank+1] != byte(rank+100) {
						panic("gather misplaced a block")
					}
				}
			} else if got != nil {
				panic("non-root gather returned data")
			}

			var all []byte
			if r.ID() == root {
				all = make([]byte, n)
				for i := range all {
					all[i] = byte(i * 3)
				}
			}
			mine := r.Scatter(root, all, 1)
			if mine[0] != byte(r.ID()*3) {
				panic("scatter delivered the wrong block")
			}
		})
	}
}

func TestAllreduceSumScalar(t *testing.T) {
	n := 7
	runWorld(t, n, func(r *Rank) {
		if got := r.AllreduceSum(2); got != float64(2*n) {
			panic("AllreduceSum wrong")
		}
	})
}

// Figure 10 shape: host ring bandwidth beats the Phi at 1 thread/core by
// ~1.3–3.5x and at 4 threads/core by ~24–54x.
func TestFig10Ratios(t *testing.T) {
	hostBW := func(m int) float64 {
		bw, err := RingBandwidth(Config{Ranks: HostPlacement(16, 1)}, m, 3)
		if err != nil {
			t.Fatal(err)
		}
		return bw
	}
	phiBW := func(m, tpc, ranks int) float64 {
		bw, err := RingBandwidth(phiCfg(ranks, tpc), m, 3)
		if err != nil {
			t.Fatal(err)
		}
		return bw
	}
	for _, m := range []int{64, 4096, 256 << 10, 4 << 20} {
		r1 := hostBW(m) / phiBW(m, 1, 59)
		if r1 < 1.2 || r1 > 4.0 {
			t.Errorf("host/phi(1tpc) at %d B = %.2f, want 1.3–3.5", m, r1)
		}
		r4 := hostBW(m) / phiBW(m, 4, 236)
		if r4 < 20 || r4 > 60 {
			t.Errorf("host/phi(4tpc) at %d B = %.2f, want 24–54", m, r4)
		}
	}
}

// Figures 11–12 shape: collectives are faster on the host than on Phi0,
// and more threads per core on the Phi make them much worse.
func TestCollectiveHostAdvantage(t *testing.T) {
	for _, kind := range []CollectiveKind{BcastKind, AllreduceKind, AllgatherKind, AlltoallKind} {
		for _, m := range []int{8, 1024} {
			host, err := CollectiveTime(hostCfg(16), kind, m, 2)
			if err != nil {
				t.Fatal(err)
			}
			phi1, err := CollectiveTime(phiCfg(59, 1), kind, m, 2)
			if err != nil {
				t.Fatal(err)
			}
			phi4, err := CollectiveTime(phiCfg(236, 4), kind, m, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !(host < phi1 && phi1 < phi4) {
				t.Errorf("%v at %d B: want host (%v) < phi 1tpc (%v) < phi 4tpc (%v)",
					kind, m, host, phi1, phi4)
			}
		}
	}
}

func TestCollectiveKindString(t *testing.T) {
	if BcastKind.String() != "MPI_Bcast" || AlltoallKind.String() != "MPI_AlltoAll" {
		t.Error("CollectiveKind.String wrong")
	}
}

func TestRingBandwidthSingleRankFails(t *testing.T) {
	// A 1-rank ring would self-send; the panic must surface as an error.
	if _, err := RingBandwidth(hostCfg(1), 64, 1); err == nil {
		t.Fatal("1-rank ring accepted")
	}
}

func TestCollectiveOnPreUpdateStack(t *testing.T) {
	// Symmetric-mode worlds route some pairs over PCIe; both software
	// stacks must work and post-update must be at least as fast.
	mk := func(sw pcie.Software) Config {
		locs := append(HostPlacement(4, 1), PhiPlacement(machine.Phi0, 4, 1)...)
		return Config{Ranks: locs, Stack: pcie.NewStack(sw)}
	}
	pre, err := CollectiveTime(mk(pcie.PreUpdate), BcastKind, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	post, err := CollectiveTime(mk(pcie.PostUpdate), BcastKind, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if post >= pre {
		t.Fatalf("post-update bcast (%v) not faster than pre-update (%v)", post, pre)
	}
}

// Property: collectives deliver correct results regardless of how ranks
// are scattered across host, Phi0 and Phi1 (placement changes timing,
// never data).
func TestCollectivesOnRandomPlacements(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%7) + 2
		rng := vclock.NewRNG(seed)
		locs := make([]Location, n)
		devices := []machine.Device{machine.Host, machine.Phi0, machine.Phi1}
		for i := range locs {
			dev := devices[rng.Intn(3)]
			tpc := rng.Intn(2) + 1
			if dev.IsPhi() {
				tpc = rng.Intn(4) + 1
			}
			locs[i] = Location{Device: dev, ThreadsPerCore: tpc}
		}
		w, err := NewWorld(Config{Ranks: locs})
		if err != nil {
			return false
		}
		ok := true
		err = w.Run(func(r *Rank) {
			sum := r.AllreduceSum(float64(r.ID() + 1))
			if sum != float64(n*(n+1)/2) {
				ok = false
			}
			all := r.Allgather([]byte{byte(r.ID())})
			for i := 0; i < n; i++ {
				if all[i] != byte(i) {
					ok = false
				}
			}
			buf := make([]byte, n)
			if r.ID() == 0 {
				for i := range buf {
					buf[i] = byte(i * 3)
				}
			}
			got := r.Bcast(0, buf)
			for i := range got {
				if got[i] != byte(i*3) {
					ok = false
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
