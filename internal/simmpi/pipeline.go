package simmpi

import (
	"fmt"

	"maia/internal/simtrace"
	"maia/internal/vclock"
)

// The pipeline replay prices LU's wavefront (Figure 20) in closed form.
// The scalar-clock argument of repeat.go does not apply — rank clocks
// are NOT equal during a pipeline fill — but a weaker symmetry does: in
// a homogeneous flat world every (i, i+1) edge has the same transfer
// cost, so one clock VECTOR t[0..n) stepped through the exact
// send/recvAt float recurrences reproduces every rank's clock bit for
// bit, without goroutines or message queues.
//
// Round r of rank i depends only on round r of rank i-1 (the upstream
// boundary message) and rank i's own earlier rounds, so a round-major,
// rank-ascending traversal visits every operation after its
// dependencies with each rank's program order preserved.

// RepeatPipeline prices `rounds` wavefront rounds on a line of ranks:
// each round, rank i>0 receives msgBytes from rank i-1, every rank
// computes for `compute`, and rank i<n-1 sends msgBytes to rank i+1 —
// the LU hyperplane sweep. ok is false when the goroutine engine is
// needed: fault plans, heterogeneous placement, rack worlds (node-
// boundary edges cost differently than intra-node ones), worlds smaller
// than two ranks, or the MAIA_NO_FASTPATH escape hatch.
//
// Like RepeatOp, RepeatPipeline does not populate per-rank profiles or
// final clocks; callers use the returned makespan.
func (w *World) RepeatPipeline(msgBytes, rounds int, compute vclock.Time) (vclock.Time, bool) {
	if w.rack != nil || !w.repeatable() || msgBytes < 0 || rounds < 0 || compute < 0 {
		return 0, false
	}
	n := w.size
	t := make([]vclock.Time, n)
	post := make([]vclock.Time, n)
	sendSide, flight, rendezvous := w.transferCost(0, 1, msgBytes)
	var msgs, bytes int64
	for round := 0; round < rounds; round++ {
		for id := 0; id < n; id++ {
			if id > 0 {
				// recvAt: the transfer starts at the upstream post (or,
				// for rendezvous sizes, when both sides are ready) and
				// the receiver's clock advances to its landing.
				start := post[id-1]
				if rendezvous {
					start = vclock.Max(post[id-1], t[id])
				}
				if done := start + flight; done > t[id] {
					t[id] = done
				}
			}
			t[id] += compute
			if id < n-1 {
				// send: record the post time, charge the injection cost.
				post[id] = t[id]
				t[id] += sendSide
				msgs++
				bytes += int64(msgBytes)
			}
		}
	}
	total := vclock.MaxOf(t...)
	if tr := w.cfg.Tracer; tr != nil {
		track := w.cfg.TraceLabel
		if track == "" {
			track = "repeat"
		}
		tr.Span(track, simtrace.CatMPI, fmt.Sprintf("pipeline x%d", rounds), 0, total, bytes)
		tr.Count(simtrace.CatMPI, "messages", msgs)
		tr.Count(simtrace.CatMPI, "bytes", bytes)
	}
	return total, true
}
