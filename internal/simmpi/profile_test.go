package simmpi

import (
	"strings"
	"testing"

	"maia/internal/vclock"
)

func TestProfileAttribution(t *testing.T) {
	w, _ := NewWorld(hostCfg(4))
	err := w.Run(func(r *Rank) {
		r.Compute(2 * vclock.Millisecond)
		r.Allreduce([]float64{1}, OpSum)
		n := r.Size()
		r.Sendrecv((r.ID()+1)%n, 0, make([]byte, 1024), (r.ID()-1+n)%n, 0)
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range w.Profiles() {
		if p.Compute != 2*vclock.Millisecond {
			t.Fatalf("rank %d compute = %v", p.Rank, p.Compute)
		}
		for _, op := range []string{"MPI_Allreduce", "MPI_Send", "MPI_Recv", "MPI_Barrier"} {
			s, ok := p.MPI[op]
			if !ok || s.Calls == 0 {
				t.Fatalf("rank %d missing %s: %+v", p.Rank, op, p.MPI)
			}
		}
		// Collective-internal sends must NOT appear as MPI_Send: only the
		// one explicit Sendrecv pair.
		if p.MPI["MPI_Send"].Calls != 1 || p.MPI["MPI_Recv"].Calls != 1 {
			t.Fatalf("rank %d p2p calls = %+v (collective traffic leaked)", p.Rank, p.MPI)
		}
		if p.MPI["MPI_Send"].Bytes != 1024 {
			t.Fatalf("send bytes = %d", p.MPI["MPI_Send"].Bytes)
		}
	}
}

func TestProfileSummary(t *testing.T) {
	w, _ := NewWorld(hostCfg(4))
	err := w.Run(func(r *Rank) {
		// Rank 3 computes twice as long: imbalance 4*2/(3+3*1... ) mean=1.25ms.
		d := vclock.Millisecond
		if r.ID() == 3 {
			d *= 2
		}
		r.Compute(d)
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	s := w.Summarize()
	if s.Ranks != 4 {
		t.Fatalf("ranks = %d", s.Ranks)
	}
	if s.MaxCompute != 2*vclock.Millisecond {
		t.Fatalf("max compute = %v", s.MaxCompute)
	}
	wantBalance := 2.0 / 1.25
	if s.ComputeBalance < wantBalance*0.99 || s.ComputeBalance > wantBalance*1.01 {
		t.Fatalf("balance = %v, want %v", s.ComputeBalance, wantBalance)
	}
	if s.MaxTotal < s.MaxCompute {
		t.Fatal("makespan below max compute")
	}
	if !strings.Contains(s.String(), "balance=1.60") {
		t.Fatalf("summary string: %s", s)
	}
}

func TestFormatProfile(t *testing.T) {
	w, _ := NewWorld(hostCfg(2))
	if err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, []byte{1, 2, 3})
		} else {
			r.Recv(0, 0)
		}
	}); err != nil {
		t.Fatal(err)
	}
	out := FormatProfile(w.Profiles()[0])
	if !strings.Contains(out, "MPI_Send") || !strings.Contains(out, "bytes=3") {
		t.Fatalf("FormatProfile output:\n%s", out)
	}
}

// Irecv+Wait shows up as MPI_Wait.
func TestProfileWait(t *testing.T) {
	w, _ := NewWorld(hostCfg(2))
	if err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, []byte{1})
		} else {
			req := r.Irecv(0, 0)
			req.Wait()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if w.Profiles()[1].MPI["MPI_Wait"].Calls != 1 {
		t.Fatalf("wait not recorded: %+v", w.Profiles()[1].MPI)
	}
}

func TestSummarizeEmptyWorldSafe(t *testing.T) {
	w, _ := NewWorld(hostCfg(1))
	if err := w.Run(func(r *Rank) {}); err != nil {
		t.Fatal(err)
	}
	s := w.Summarize()
	if s.ComputeBalance != 1 {
		t.Fatalf("idle balance = %v", s.ComputeBalance)
	}
}
