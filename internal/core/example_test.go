package core_test

import (
	"fmt"

	"maia/internal/core"
	"maia/internal/machine"
)

// The execution model prices a characterized workload on any partition.
// A bandwidth-bound streaming kernel (MG's character) is the one case
// where the Phi beats the host.
func ExampleModel_Gflops() {
	m := core.DefaultModel()
	node := machine.NewNode()
	w := core.Workload{
		Name:             "streaming stencil",
		Flops:            4e11,
		Bytes:            1e12,
		VecFraction:      0.9,
		Stride:           core.Unit,
		Reuse:            0.1,
		ParallelFraction: 0.999,
	}
	host := m.Gflops(w, machine.HostPartition(node, 1))
	phi := m.Gflops(w, machine.PhiThreadsPartition(node, machine.Phi0, 177))
	fmt.Println(phi > host)
	// Output: true
}
