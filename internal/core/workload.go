// Package core is the execution model at the center of this reproduction:
// it predicts how long a characterized computation takes on a given
// partition of the Maia node, capturing every architectural effect the
// paper identifies as decisive for Xeon Phi performance:
//
//   - 512-bit SIMD: peak needs highly vectorized, unit-stride code; the
//     Phi's gather/scatter vector path is barely better than scalar
//     (Section 6.8.1: vectorizing CG's sparse BLAS bought only 10%);
//   - in-order cores: one thread per core cannot issue back-to-back
//     instructions, so hardware threads are required to fill the
//     pipeline (2–4 threads per core, with 3 often the sweet spot);
//   - memory bandwidth: the roofline between compute rate and sustained
//     memory bandwidth (STREAM model from package memsim), which is why
//     bandwidth-bound MG is the one NPB kernel that wins on the Phi while
//     bandwidth-starved OVERFLOW loses;
//   - the OS core: placements that touch the 60th core suffer MPSS
//     interference (Figure 24);
//   - Amdahl: serial regions run on one slow in-order core.
//
// Drivers (NPB, the CFD mini-apps, offload experiments) describe phases
// as Workloads; the model prices them; the OpenMP/MPI/offload runtimes
// add their own overheads on top.
package core

import "fmt"

// StrideClass is the dominant memory-access pattern of a workload.
type StrideClass int

const (
	// Unit is stride-1 access: full vector and prefetch efficiency.
	Unit StrideClass = iota
	// Strided is constant non-unit stride: partial vector efficiency.
	Strided
	// GatherScatter is indirect addressing (e.g. sparse matrix-vector):
	// nearly scalar on the Phi, merely slowed on the host.
	GatherScatter
)

// String implements fmt.Stringer.
func (s StrideClass) String() string {
	switch s {
	case Unit:
		return "unit"
	case Strided:
		return "strided"
	case GatherScatter:
		return "gather-scatter"
	default:
		return fmt.Sprintf("StrideClass(%d)", int(s))
	}
}

// Workload characterizes one computational phase.
type Workload struct {
	Name string
	// Flops is the double-precision operation count.
	Flops float64
	// Bytes is the main-memory traffic (read + write).
	Bytes float64
	// VecFraction is the fraction of the computation the compiler can
	// vectorize, in [0, 1].
	VecFraction float64
	// Stride classifies the memory access pattern.
	Stride StrideClass
	// Reuse is the fraction of Bytes that a sufficiently large cache
	// could absorb (temporal reuse potential), in [0, 1]. Streaming
	// kernels are near 0; blocked solvers near 0.8.
	Reuse float64
	// ParallelFraction is the Amdahl parallelizable fraction, in [0, 1].
	ParallelFraction float64
}

// Validate reports whether the workload's fields are in range.
func (w Workload) Validate() error {
	if w.Flops < 0 || w.Bytes < 0 {
		return fmt.Errorf("core: %s: negative flops or bytes", w.Name)
	}
	if w.VecFraction < 0 || w.VecFraction > 1 {
		return fmt.Errorf("core: %s: VecFraction %v out of [0,1]", w.Name, w.VecFraction)
	}
	if w.Reuse < 0 || w.Reuse > 1 {
		return fmt.Errorf("core: %s: Reuse %v out of [0,1]", w.Name, w.Reuse)
	}
	if w.ParallelFraction < 0 || w.ParallelFraction > 1 {
		return fmt.Errorf("core: %s: ParallelFraction %v out of [0,1]", w.Name, w.ParallelFraction)
	}
	return nil
}

// OperationalIntensity returns flops per byte of memory traffic (the
// roofline x-axis). Workloads with zero traffic are pure compute.
func (w Workload) OperationalIntensity() float64 {
	if w.Bytes == 0 {
		return 0
	}
	return w.Flops / w.Bytes
}

// Scale returns a copy with flops and bytes multiplied by f — convenient
// for expressing per-iteration profiles.
func (w Workload) Scale(f float64) Workload {
	w.Flops *= f
	w.Bytes *= f
	return w
}
