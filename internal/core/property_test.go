package core

import (
	"testing"
	"testing/quick"

	"maia/internal/machine"
	"maia/internal/vclock"
)

// randomWorkload builds a valid workload from fuzz inputs.
func randomWorkload(f, b uint32, vec, reuse, par uint8, stride uint8) Workload {
	return Workload{
		Name:             "fuzz",
		Flops:            float64(f%1000+1) * 1e9,
		Bytes:            float64(b%1000+1) * 1e9,
		VecFraction:      float64(vec%101) / 100,
		Stride:           StrideClass(stride % 3),
		Reuse:            float64(reuse%101) / 100,
		ParallelFraction: float64(par%100+1) / 100,
	}
}

// Time is strictly positive and scales (weakly) monotonically with both
// flops and bytes on every partition family.
func TestTimeMonotoneInWork(t *testing.T) {
	m := DefaultModel()
	node := machine.NewNode()
	parts := []machine.Partition{
		machine.HostPartition(node, 1),
		machine.HostPartition(node, 2),
		machine.PhiThreadsPartition(node, machine.Phi0, 59),
		machine.PhiThreadsPartition(node, machine.Phi0, 236),
	}
	f := func(fl, by uint32, vec, reuse, par, stride uint8) bool {
		w := randomWorkload(fl, by, vec, reuse, par, stride)
		bigger := w
		bigger.Flops *= 2
		bigger.Bytes *= 2
		for _, p := range parts {
			t1 := m.Time(w, p)
			t2 := m.Time(bigger, p)
			if t1 <= 0 || t2 < t1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Fully parallel work is never slower on more cores of the same device.
func TestTimeMonotoneInCores(t *testing.T) {
	m := DefaultModel()
	node := machine.NewNode()
	f := func(fl, by uint32, vec, stride uint8, coresRaw uint8) bool {
		w := randomWorkload(fl, by, vec, 0, 99, stride)
		w.ParallelFraction = 1
		c := int(coresRaw%15) + 1
		small := machine.HostCoresPartition(node, c, 1)
		big := machine.HostCoresPartition(node, c+1, 1)
		return m.Time(w, big) <= m.Time(w, small)*vclock.Time(1.000001)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Scale(k) multiplies flops and bytes; for fully parallel work the time
// scales by exactly k.
func TestTimeLinearInScale(t *testing.T) {
	m := DefaultModel()
	p := machine.HostPartition(machine.NewNode(), 1)
	f := func(fl, by uint32, vec, stride uint8) bool {
		w := randomWorkload(fl, by, vec, 0, 99, stride)
		w.ParallelFraction = 1
		t1 := m.Time(w, p).Seconds()
		t3 := m.Time(w.Scale(3), p).Seconds()
		rel := t3/t1 - 3
		return rel < 1e-9 && rel > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// More cache reuse never makes a workload slower (capture only removes
// traffic).
func TestReuseNeverHurts(t *testing.T) {
	m := DefaultModel()
	node := machine.NewNode()
	parts := []machine.Partition{
		machine.HostPartition(node, 1),
		machine.PhiThreadsPartition(node, machine.Phi0, 177),
	}
	f := func(fl, by uint32, vec, stride uint8, r1, r2 uint8) bool {
		lo, hi := float64(r1%101)/100, float64(r2%101)/100
		if lo > hi {
			lo, hi = hi, lo
		}
		w := randomWorkload(fl, by, vec, 0, 99, stride)
		w.Reuse = lo
		w2 := w
		w2.Reuse = hi
		for _, p := range parts {
			if m.Time(w2, p) > m.Time(w, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Unit stride is never slower than gather/scatter, all else equal.
func TestStridePenaltyOrdering(t *testing.T) {
	m := DefaultModel()
	node := machine.NewNode()
	parts := []machine.Partition{
		machine.HostPartition(node, 1),
		machine.PhiThreadsPartition(node, machine.Phi0, 236),
	}
	f := func(fl, by uint32, vec, reuse uint8) bool {
		w := randomWorkload(fl, by, vec, reuse, 99, 0)
		w.Stride = Unit
		wg := w
		wg.Stride = GatherScatter
		for _, p := range parts {
			if m.Time(w, p) > m.Time(wg, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
