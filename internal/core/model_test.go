package core

import (
	"testing"

	"maia/internal/machine"
)

// Representative workload profiles used across the model tests. These
// mirror the characters of the paper's codes: MG is streaming and
// bandwidth-bound, BT is a blocked, vectorized solver with heavy cache
// reuse, CG is sparse gather/scatter.
func mgLike() Workload {
	return Workload{Name: "mg-like", Flops: 4e11, Bytes: 1e12,
		VecFraction: 0.9, Stride: Unit, Reuse: 0.1, ParallelFraction: 0.999}
}

func btLike() Workload {
	return Workload{Name: "bt-like", Flops: 1.5e12, Bytes: 1e12,
		VecFraction: 0.9, Stride: Unit, Reuse: 0.75, ParallelFraction: 0.999}
}

func cgLike() Workload {
	return Workload{Name: "cg-like", Flops: 2e11, Bytes: 1e12,
		VecFraction: 0.5, Stride: GatherScatter, Reuse: 0.35, ParallelFraction: 0.995}
}

func host16() machine.Partition {
	return machine.HostPartition(machine.NewNode(), 1)
}

func phiT(threads int) machine.Partition {
	return machine.PhiThreadsPartition(machine.NewNode(), machine.Phi0, threads)
}

// Figure 19 / 25 headline: the bandwidth-bound streaming kernel (MG) is
// the one that runs FASTER on the Phi than on the host.
func TestStreamingKernelWinsOnPhi(t *testing.T) {
	m := DefaultModel()
	host := m.Gflops(mgLike(), host16())
	phi := m.Gflops(mgLike(), phiT(177))
	ratio := phi / host
	if ratio < 1.05 || ratio > 1.6 {
		t.Errorf("phi/host for streaming kernel = %.2f (phi %.1f, host %.1f GF), want ~1.27",
			ratio, phi, host)
	}
}

// Cache-heavy and sparse kernels lose on the Phi, sparse losing hardest.
func TestCacheAndSparseKernelsLoseOnPhi(t *testing.T) {
	m := DefaultModel()
	btRatio := m.Gflops(btLike(), host16()) / m.Gflops(btLike(), phiT(177))
	if btRatio < 1.2 || btRatio > 3 {
		t.Errorf("host/phi for blocked kernel = %.2f, want ~1.5-2", btRatio)
	}
	cgRatio := m.Gflops(cgLike(), host16()) / m.Gflops(cgLike(), phiT(236))
	if cgRatio < btRatio {
		t.Errorf("sparse kernel (%.2f) should lose harder than blocked (%.2f)", cgRatio, btRatio)
	}
}

// The paper's threads-per-core finding for unit-stride kernels: 1 per
// core is the floor, 3 per core the sweet spot (Figure 19, Figure 25's
// MG at 177 threads).
func TestPhiThreadSweepUnitStride(t *testing.T) {
	m := DefaultModel()
	g := map[int]float64{}
	for _, th := range []int{59, 118, 177, 236} {
		g[th] = m.Gflops(mgLike(), phiT(th))
	}
	if !(g[59] < g[118] && g[118] < g[177]) {
		t.Errorf("want monotone rise to 177: %v", g)
	}
	if !(g[177] > g[236]) {
		t.Errorf("3 threads/core must beat 4 for unit stride: %v", g)
	}
	if g[59] > 0.8*g[177] {
		t.Errorf("1 thread/core should be far below 3: %v", g)
	}
}

// For latency-bound (gather) kernels the 4th thread still helps —
// the paper's Cart3D finding.
func TestPhiThreadSweepGather(t *testing.T) {
	m := DefaultModel()
	g177 := m.Gflops(cgLike(), phiT(177))
	g236 := m.Gflops(cgLike(), phiT(236))
	if g236 <= g177 {
		t.Errorf("gather kernel: 236t (%.2f) should beat 177t (%.2f)", g236, g177)
	}
}

// Figure 24's placement effect: touching the 60th (OS) core hurts.
func TestOSCorePenalty(t *testing.T) {
	m := DefaultModel()
	clean := m.Gflops(mgLike(), phiT(177))
	dirty := m.Gflops(mgLike(), phiT(180))
	if dirty >= clean {
		t.Errorf("180 threads (%.1f GF) must trail 177 (%.1f GF)", dirty, clean)
	}
	if clean/dirty < 1.15 {
		t.Errorf("OS-core penalty too small: %.3f", clean/dirty)
	}
}

// Host HyperThreading: compute-intensive codes lose ~6% (Figure 25).
func TestHostHyperThreadingHurts(t *testing.T) {
	m := DefaultModel()
	ht := machine.HostPartition(machine.NewNode(), 2)
	g16 := m.Gflops(btLike(), host16())
	g32 := m.Gflops(btLike(), ht)
	if g32 >= g16 {
		t.Errorf("HT (%.1f) should not beat 16 threads (%.1f)", g32, g16)
	}
	if g32 < 0.85*g16 {
		t.Errorf("HT penalty too large: %.1f vs %.1f", g32, g16)
	}
}

// Ablation: without cache capture, the blocked kernel looks like STREAM
// and the Phi (wrongly) wins — demonstrating the 5.1x cache-per-core gap
// is what decides Figure 19.
func TestCacheCaptureAblation(t *testing.T) {
	m := DefaultModel()
	m.CacheCapture = false
	ratio := m.Gflops(btLike(), phiT(177)) / m.Gflops(btLike(), host16())
	if ratio <= 1 {
		t.Errorf("without cache capture the Phi should win the blocked kernel, got phi/host %.2f", ratio)
	}
}

// Ablation: without the latency-hiding model, one thread per core looks
// almost as good as three.
func TestThreadLatencyHidingAblation(t *testing.T) {
	m := DefaultModel()
	m.ThreadLatencyHiding = false
	pure := Workload{Name: "compute", Flops: 1e12, VecFraction: 0.9,
		Stride: Unit, ParallelFraction: 1}
	g1 := m.Gflops(pure, phiT(59))
	g3 := m.Gflops(pure, phiT(177))
	if g3/g1 > 1.05 {
		t.Errorf("ablated model should not reward extra threads for pure compute: %.2f vs %.2f", g3, g1)
	}
}

// Serial fractions obey Amdahl: a 5%-serial workload on 236 threads is
// dominated by the single slow in-order core.
func TestAmdahlSerialFraction(t *testing.T) {
	m := DefaultModel()
	par := Workload{Name: "p", Flops: 1e12, VecFraction: 0.9, Stride: Unit, ParallelFraction: 1}
	ser := par
	ser.ParallelFraction = 0.95
	tp := m.Time(par, phiT(236))
	ts := m.Time(ser, phiT(236))
	if ts < 2*tp {
		t.Errorf("5%% serial should at least double time on 236 threads: %v vs %v", ts, tp)
	}
}

func TestValidate(t *testing.T) {
	bad := []Workload{
		{Name: "negflops", Flops: -1},
		{Name: "negbytes", Bytes: -1},
		{Name: "vec", VecFraction: 1.5},
		{Name: "reuse", Reuse: -0.1},
		{Name: "par", ParallelFraction: 2},
	}
	for _, w := range bad {
		if w.Validate() == nil {
			t.Errorf("%s accepted", w.Name)
		}
	}
	if err := mgLike().Validate(); err != nil {
		t.Errorf("valid workload rejected: %v", err)
	}
}

func TestTimePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid workload did not panic")
		}
	}()
	DefaultModel().Time(Workload{VecFraction: 2}, host16())
}

func TestWorkloadHelpers(t *testing.T) {
	w := Workload{Flops: 100, Bytes: 50}
	if w.OperationalIntensity() != 2 {
		t.Errorf("OI = %v", w.OperationalIntensity())
	}
	if (Workload{}).OperationalIntensity() != 0 {
		t.Error("OI of empty workload must be 0")
	}
	s := w.Scale(3)
	if s.Flops != 300 || s.Bytes != 150 || w.Flops != 100 {
		t.Error("Scale wrong or mutated receiver")
	}
	if Unit.String() != "unit" || GatherScatter.String() != "gather-scatter" {
		t.Error("StrideClass.String wrong")
	}
}

func TestGflopsConsistentWithTime(t *testing.T) {
	m := DefaultModel()
	w := mgLike()
	p := host16()
	g := m.Gflops(w, p)
	tt := m.Time(w, p)
	if diff := g - w.Flops/tt.Seconds()/1e9; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Gflops inconsistent with Time: %v", diff)
	}
}

// Absolute scale sanity: the MG-like workload lands in the tens of
// Gflop/s on the host, like the paper's 23.5 (Figure 25).
func TestAbsoluteScale(t *testing.T) {
	g := DefaultModel().Gflops(mgLike(), host16())
	if g < 15 || g > 45 {
		t.Errorf("host streaming kernel = %.1f GF, want tens of Gflop/s", g)
	}
}
