package core

import (
	"maia/internal/machine"
	"maia/internal/memsim"
	"maia/internal/vclock"
)

// Model holds the tunable knobs of the execution model. The defaults
// reproduce the paper; the ablation benchmarks flip individual knobs.
type Model struct {
	// Stream configures the sustained-bandwidth model (including the
	// GDDR5 open-bank limit of Figure 4).
	Stream memsim.StreamConfig
	// ThreadLatencyHiding enables the in-order issue model: without it a
	// single Phi thread per core is (wrongly) assumed to reach full
	// issue rate. Ablation for the threads-per-core sweeps.
	ThreadLatencyHiding bool
	// CacheCapture enables the cache-reuse model: the host's 2.8 MB of
	// cache per core absorbs a workload's reusable traffic, the Phi's
	// 544 KB mostly cannot (the 5.1x gap of Section 6.2). Ablating it
	// makes every benchmark look like STREAM.
	CacheCapture bool
	// OSCorePenalty multiplies time when the placement uses the
	// OS-reserved core (Figure 24's 60/120/180/240-thread placements).
	OSCorePenalty float64
}

// DefaultModel returns the calibration that reproduces the paper.
func DefaultModel() Model {
	return Model{
		Stream:              memsim.DefaultStreamConfig(),
		ThreadLatencyHiding: true,
		CacheCapture:        true,
		OSCorePenalty:       1.25,
	}
}

// issueEfficiency models how well one core's pipelines are fed at the
// given hardware-thread count.
//
// Phi (in-order): a single thread cannot issue back-to-back instructions
// and stalls on every memory access, so issue efficiency starts near 0.5
// and climbs with threads. Unit-stride code peaks at 3 threads per core
// (the 4th mostly adds cache pressure — the paper finds 3 best for most
// NPBs); latency-bound gather/scatter code keeps gaining through 4 (the
// paper finds 4 best for Cart3D and BT-MPI).
//
// Host (out-of-order): one thread per core nearly saturates the core;
// HyperThreading slightly hurts compute-intensive codes (Figure 25: 32
// threads run 6% below 16 threads).
func (m Model) issueEfficiency(part machine.Partition, stride StrideClass) float64 {
	tpc := part.ThreadsPerCore
	if !part.Proc.InOrder {
		if tpc >= 2 {
			return 0.84 // both hardware threads together
		}
		return 0.90
	}
	if !m.ThreadLatencyHiding {
		return 0.95
	}
	var curve [5]float64
	if stride == GatherScatter || stride == Strided {
		// Latency-bound access: every extra context hides more stalls.
		curve = [5]float64{0, 0.35, 0.60, 0.80, 0.95}
	} else {
		// Unit stride: issue slots fill by 3 threads; the 4th thread's
		// gain is offset by L1/L2 sharing.
		curve = [5]float64{0, 0.50, 0.80, 0.95, 0.93}
	}
	if tpc > 4 {
		tpc = 4
	}
	return curve[tpc]
}

// vectorEfficiency returns the fraction of a core's peak flop rate the
// workload reaches given its vectorizable fraction and stride. Scalar
// code is limited to one lane of the SIMD unit.
func (m Model) vectorEfficiency(part machine.Partition, w Workload) float64 {
	lanes := float64(part.Proc.SIMDWidthBits) / 64 // DP lanes
	var strideEff float64
	switch w.Stride {
	case Unit:
		strideEff = 1.0
	case Strided:
		if part.Proc.InOrder {
			strideEff = 0.35
		} else {
			strideEff = 0.60
		}
	case GatherScatter:
		if part.Proc.InOrder {
			// Section 6.8.1: hardware gather/scatter on the Phi bought
			// CG only ~10% over scalar: 1.1 lanes of 8.
			strideEff = 1.1 / lanes
		} else {
			strideEff = 0.50
		}
	}
	return w.VecFraction*strideEff + (1-w.VecFraction)/lanes
}

// appComputeEfficiency is the fixed gap between the issue/vector model
// and real compiled code: dependency chains, spills, and address
// arithmetic. The in-order Phi pays far more of it.
func appComputeEfficiency(proc machine.ProcessorSpec) float64 {
	if proc.InOrder {
		return 0.5
	}
	return 1.0
}

// computeRate returns the partition's aggregate flop rate (flops/s) for
// the workload.
func (m Model) computeRate(part machine.Partition, w Workload) float64 {
	perCore := part.Proc.PeakGflopsPerCore() * 1e9
	eff := m.issueEfficiency(part, w.Stride) *
		m.vectorEfficiency(part, w) *
		appComputeEfficiency(part.Proc)
	return perCore * eff * float64(part.Cores)
}

// appMemEfficiency maps the STREAM-sustained bandwidth to what a real
// application phase achieves at the partition's threads-per-core. On the
// Phi, one thread per core cannot keep enough loads in flight to fill
// the GDDR5 pipes (which is why MG gains through 3 threads per core even
// though STREAM already peaks at 59 threads); the 4th thread loses a
// little to cache thrashing. On the host, one thread per core is already
// near-optimal and HyperThreading costs a little.
func appMemEfficiency(part machine.Partition, stride StrideClass) float64 {
	tpc := part.ThreadsPerCore
	if !part.Proc.InOrder {
		if tpc >= 2 {
			return 0.80
		}
		return 0.85
	}
	// Unit-stride phases saturate by 3 threads per core and lose a
	// little to L1/L2 thrashing at 4; latency-bound irregular access
	// keeps needing more outstanding loads, so it gains through 4.
	curve := [5]float64{0, 0.32, 0.44, 0.62, 0.58}
	if stride != Unit {
		curve = [5]float64{0, 0.22, 0.38, 0.52, 0.62}
	}
	if tpc > 4 {
		tpc = 4
	}
	return curve[tpc]
}

// memStrideDerate is the bandwidth wasted when accesses are not unit
// stride (partial cache-line use, no prefetch).
func memStrideDerate(proc machine.ProcessorSpec, stride StrideClass) float64 {
	switch stride {
	case Strided:
		if proc.InOrder {
			return 0.45
		}
		return 0.60
	case GatherScatter:
		if proc.InOrder {
			return 0.35
		}
		return 0.55
	default:
		return 1.0
	}
}

// memoryRate returns the partition's sustained application memory
// bandwidth (bytes/s) for the workload.
func (m Model) memoryRate(part machine.Partition, w Workload) float64 {
	bw := memsim.TriadBandwidth(part, m.Stream) * 1e9
	return bw * appMemEfficiency(part, w.Stride) * memStrideDerate(part.Proc, w.Stride)
}

// cacheCapture is the fraction of a workload's reusable traffic the
// partition's caches absorb. The host's 2.788 MB per core captures
// essentially all of it; the Phi's 544 KB per core captures a quarter
// (the paper's Section 6.2 cache-capacity comparison).
func (m Model) cacheCapture(part machine.Partition) float64 {
	if !m.CacheCapture {
		return 0
	}
	if part.Proc.InOrder {
		return 0.25
	}
	return 1.0
}

// effectiveBytes is the main-memory traffic after cache reuse.
func (m Model) effectiveBytes(part machine.Partition, w Workload) float64 {
	return w.Bytes * (1 - w.Reuse*m.cacheCapture(part))
}

// Time predicts the execution time of w on part: the parallelizable part
// runs at the roofline of compute and memory rates; the serial remainder
// runs on a single core at one thread.
func (m Model) Time(w Workload, part machine.Partition) vclock.Time {
	if err := w.Validate(); err != nil {
		panic(err)
	}
	t := m.phaseTime(w.Scale(w.ParallelFraction), part)

	if serial := 1 - w.ParallelFraction; serial > 0 {
		single := part
		single.Cores = 1
		single.ThreadsPerCore = 1
		single.UsesOSCore = false
		t += m.phaseTime(w.Scale(serial), single)
	}

	if part.UsesOSCore && m.OSCorePenalty > 1 {
		t *= vclock.Time(m.OSCorePenalty)
	}
	return t
}

// phaseTime prices one fully parallel phase on a partition: the roofline
// of compute and memory time, with a modest non-overlap tax.
func (m Model) phaseTime(w Workload, part machine.Partition) vclock.Time {
	var tc, tm float64
	if w.Flops > 0 {
		if rate := m.computeRate(part, w); rate > 0 {
			tc = w.Flops / rate
		}
	}
	if b := m.effectiveBytes(part, w); b > 0 {
		if rate := m.memoryRate(part, w); rate > 0 {
			tm = b / rate
		}
	}
	hi, lo := tc, tm
	if tm > tc {
		hi, lo = tm, tc
	}
	return vclock.Time(hi + 0.25*lo)
}

// Gflops returns the workload's achieved Gflop/s on the partition — the
// unit most of the paper's NPB figures report.
func (m Model) Gflops(w Workload, part machine.Partition) float64 {
	t := m.Time(w, part)
	if t <= 0 {
		return 0
	}
	return w.Flops / t.Seconds() / 1e9
}
