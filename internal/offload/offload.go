// Package offload models the Intel offload programming mode (Section 4.1,
// Figures 25–27): a host program marks regions that execute on a Phi, and
// the runtime moves the region's data over PCIe around each invocation.
//
// Each offload invocation is charged three cost components, matching the
// decomposition the paper extracts with OFFLOAD_REPORT (Section 6.9.1.4):
//
//   - host side: per-invocation setup plus gathering the input data into
//     pinned transfer buffers;
//   - PCIe: the DMA transfer of inputs (host to Phi) and outputs (Phi to
//     host) through the package pcie offload-DMA model;
//   - Phi side: per-invocation setup plus scattering the data into the
//     coprocessor's memory.
//
// The kernel's own execution time on the Phi is supplied by the caller
// (computed by the core execution model), so the engine cleanly separates
// "offload overhead" from "useful work" — exactly the split Figure 26
// plots.
package offload

import (
	"fmt"

	"maia/internal/pcie"
	"maia/internal/simtrace"
	"maia/internal/vclock"
)

// Config holds the calibrated per-side costs of the offload runtime.
type Config struct {
	DMA  pcie.DMAConfig
	Path pcie.Path

	// HostSetup and PhiSetup are fixed per-invocation costs (pragma
	// dispatch, descriptor exchange, signal handling).
	HostSetup vclock.Time
	PhiSetup  vclock.Time

	// HostCopyGBs and PhiCopyGBs are the memcpy rates for
	// gathering/scattering offload buffers on each side.
	HostCopyGBs float64
	PhiCopyGBs  float64
}

// DefaultConfig returns the calibration used for Figures 25–27.
func DefaultConfig() Config {
	return Config{
		DMA:         pcie.DefaultDMAConfig(),
		Path:        pcie.HostPhi0,
		HostSetup:   40 * vclock.Microsecond,
		PhiSetup:    60 * vclock.Microsecond,
		HostCopyGBs: 10.0,
		PhiCopyGBs:  20.0,
	}
}

// Report is the OFFLOAD_REPORT-style ledger of an engine: cumulative
// counts and the three overhead components of Figure 26.
type Report struct {
	Invocations int
	BytesIn     int64 // host -> Phi
	BytesOut    int64 // Phi -> host

	HostTime     vclock.Time // setup + gather/scatter on the host
	TransferTime vclock.Time // PCIe DMA, both directions
	PhiTime      vclock.Time // setup + gather/scatter on the Phi
	KernelTime   vclock.Time // useful work on the coprocessor
}

// Overhead returns the total non-kernel time.
func (r Report) Overhead() vclock.Time {
	return r.HostTime + r.TransferTime + r.PhiTime
}

// Total returns overhead plus kernel time.
func (r Report) Total() vclock.Time { return r.Overhead() + r.KernelTime }

// String summarizes the ledger in an OFFLOAD_REPORT-like line.
func (r Report) String() string {
	return fmt.Sprintf("offloads=%d in=%dB out=%dB host=%v pcie=%v phi=%v kernel=%v",
		r.Invocations, r.BytesIn, r.BytesOut,
		r.HostTime, r.TransferTime, r.PhiTime, r.KernelTime)
}

// Engine executes offloaded regions and accumulates the ledger.
type Engine struct {
	cfg    Config
	report Report

	// Tracing state: tracer is nil when tracing is off; clock is the
	// engine's trace timeline, advanced by each traced invocation.
	tracer *simtrace.Tracer
	track  string
	clock  vclock.Clock
}

// EngineOption configures an Engine at construction.
type EngineOption func(*Engine)

// WithTracer returns an option attaching a tracer (and the track name
// its spans appear under) to the engine. A nil tracer leaves tracing
// off.
func WithTracer(t *simtrace.Tracer, track string) EngineOption {
	return func(e *Engine) { e.SetTracer(t, track) }
}

// NewEngine returns an engine with the given configuration.
func NewEngine(cfg Config, opts ...EngineOption) *Engine {
	e := &Engine{cfg: cfg}
	for _, o := range opts {
		o(e)
	}
	return e
}

// SetTracer attaches a tracer to the engine: each offload invocation
// emits its stage spans (marshal, DMA each way, scatter, kernel) on the
// given track. A nil tracer turns tracing off.
func (e *Engine) SetTracer(t *simtrace.Tracer, track string) {
	e.tracer = t
	e.track = track
}

// traceStage lays one stage of a synchronous offload onto the engine's
// trace timeline. Callers must have checked e.tracer != nil.
func (e *Engine) traceStage(name string, cat simtrace.Category, d vclock.Time, bytes int64) {
	t0 := e.clock.Now()
	if d > 0 {
		e.clock.Advance(d)
	}
	e.tracer.Span(e.track, cat, name, t0, e.clock.Now(), bytes)
}

// traceCounts bumps the per-invocation offload counters.
func (e *Engine) traceCounts(inBytes, outBytes int64) {
	e.tracer.Count(simtrace.CatOffload, "invocations", 1)
	e.tracer.Count(simtrace.CatOffload, "bytes_in", inBytes)
	e.tracer.Count(simtrace.CatOffload, "bytes_out", outBytes)
}

// Report returns the cumulative ledger.
func (e *Engine) Report() Report { return e.report }

// ResetReport clears the ledger between experiments.
func (e *Engine) ResetReport() { e.report = Report{} }

// Offload executes one offloaded region: inBytes are shipped to the Phi,
// kernelTime of work runs there, outBytes come back. body, when non-nil,
// really executes (so offloaded NPB kernels compute genuine results).
// The return value is the invocation's total virtual time as seen by the
// host program, which blocks for the duration (synchronous offload).
func (e *Engine) Offload(inBytes, outBytes int64, kernelTime vclock.Time, body func()) (vclock.Time, error) {
	if inBytes < 0 || outBytes < 0 {
		return 0, fmt.Errorf("offload: negative transfer size (%d in, %d out)", inBytes, outBytes)
	}
	if kernelTime < 0 {
		return 0, fmt.Errorf("offload: negative kernel time %v", kernelTime)
	}
	if body != nil {
		body()
	}

	bytes := inBytes + outBytes
	host := e.cfg.HostSetup + vclock.Time(float64(bytes)/(e.cfg.HostCopyGBs*1e9))
	phi := e.cfg.PhiSetup + vclock.Time(float64(bytes)/(e.cfg.PhiCopyGBs*1e9))
	inT := e.transferTime(inBytes)
	outT := e.transferTime(outBytes)
	transfer := inT + outT

	if e.tracer != nil {
		e.traceStage("marshal:host", simtrace.CatOffload, host, bytes)
		if inBytes > 0 {
			e.traceStage("dma:h2d", simtrace.CatPCIe, inT, inBytes)
		}
		e.traceStage("scatter:phi", simtrace.CatOffload, phi, bytes)
		e.traceStage("kernel", simtrace.CatCompute, kernelTime, 0)
		if outBytes > 0 {
			e.traceStage("dma:d2h", simtrace.CatPCIe, outT, outBytes)
		}
		e.traceCounts(inBytes, outBytes)
	}

	e.report.Invocations++
	e.report.BytesIn += inBytes
	e.report.BytesOut += outBytes
	e.report.HostTime += host
	e.report.TransferTime += transfer
	e.report.PhiTime += phi
	e.report.KernelTime += kernelTime

	return host + transfer + phi + kernelTime, nil
}

// pcieTransfer prices one DMA transfer under a config.
func pcieTransfer(cfg Config, bytes int) vclock.Time {
	return pcie.OffloadTransferTime(cfg.DMA, cfg.Path, bytes)
}
