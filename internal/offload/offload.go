// Package offload models the Intel offload programming mode (Section 4.1,
// Figures 25–27): a host program marks regions that execute on a Phi, and
// the runtime moves the region's data over PCIe around each invocation.
//
// Each offload invocation is charged three cost components, matching the
// decomposition the paper extracts with OFFLOAD_REPORT (Section 6.9.1.4):
//
//   - host side: per-invocation setup plus gathering the input data into
//     pinned transfer buffers;
//   - PCIe: the DMA transfer of inputs (host to Phi) and outputs (Phi to
//     host) through the package pcie offload-DMA model;
//   - Phi side: per-invocation setup plus scattering the data into the
//     coprocessor's memory.
//
// The kernel's own execution time on the Phi is supplied by the caller
// (computed by the core execution model), so the engine cleanly separates
// "offload overhead" from "useful work" — exactly the split Figure 26
// plots.
package offload

import (
	"fmt"

	"maia/internal/machine"
	"maia/internal/pcie"
	"maia/internal/simfault"
	"maia/internal/simtrace"
	"maia/internal/vclock"
)

// Config holds the calibrated per-side costs of the offload runtime.
type Config struct {
	DMA  pcie.DMAConfig
	Path pcie.Path

	// HostSetup and PhiSetup are fixed per-invocation costs (pragma
	// dispatch, descriptor exchange, signal handling).
	HostSetup vclock.Time
	PhiSetup  vclock.Time

	// HostCopyGBs and PhiCopyGBs are the memcpy rates for
	// gathering/scattering offload buffers on each side.
	HostCopyGBs float64
	PhiCopyGBs  float64
}

// DefaultConfig returns the calibration used for Figures 25–27.
func DefaultConfig() Config {
	return Config{
		DMA:         pcie.DefaultDMAConfig(),
		Path:        pcie.HostPhi0,
		HostSetup:   40 * vclock.Microsecond,
		PhiSetup:    60 * vclock.Microsecond,
		HostCopyGBs: 10.0,
		PhiCopyGBs:  20.0,
	}
}

// Report is the OFFLOAD_REPORT-style ledger of an engine: cumulative
// counts and the three overhead components of Figure 26.
type Report struct {
	Invocations int
	BytesIn     int64 // host -> Phi
	BytesOut    int64 // Phi -> host

	HostTime     vclock.Time // setup + gather/scatter on the host
	TransferTime vclock.Time // PCIe DMA, both directions, incl. retry stalls
	PhiTime      vclock.Time // setup + gather/scatter on the Phi
	KernelTime   vclock.Time // useful work on the coprocessor

	// Degradation ledger, populated only when a fault plan injects
	// something (see package simfault): DMA retransmissions after seeded
	// drops, invocations completed on the host because the target
	// coprocessor failed, and the host time those fallback kernels took.
	Retries      int
	Fallbacks    int
	FallbackTime vclock.Time
}

// Overhead returns the total non-kernel time.
func (r Report) Overhead() vclock.Time {
	return r.HostTime + r.TransferTime + r.PhiTime
}

// Total returns overhead plus kernel time (host-fallback kernels
// included).
func (r Report) Total() vclock.Time { return r.Overhead() + r.KernelTime + r.FallbackTime }

// String summarizes the ledger in an OFFLOAD_REPORT-like line.
func (r Report) String() string {
	return fmt.Sprintf("offloads=%d in=%dB out=%dB host=%v pcie=%v phi=%v kernel=%v",
		r.Invocations, r.BytesIn, r.BytesOut,
		r.HostTime, r.TransferTime, r.PhiTime, r.KernelTime)
}

// Engine executes offloaded regions and accumulates the ledger.
type Engine struct {
	cfg    Config
	report Report

	// Tracing state: tracer is nil when tracing is off; clock is the
	// engine's virtual timeline, advanced by every invocation (traced or
	// not) so time-dependent faults see when each offload dispatches.
	tracer *simtrace.Tracer
	track  string
	clock  vclock.Clock

	// Fault state: faults is the active plan (nil-safe); fabric is the
	// plan's entry for this engine's PCIe path, resolved once; fallback
	// converts a kernel's Phi time to host time when the target has
	// failed; invSeq numbers invocations for seeded drop decisions;
	// probed records that the dead target was already discovered (the
	// detection deadline is paid once, not per invocation).
	faults   *simfault.Plan
	fabric   *simfault.FabricFault
	fallback func(vclock.Time) vclock.Time
	invSeq   int
	probed   bool
}

// EngineOption configures an Engine at construction.
type EngineOption func(*Engine)

// WithTracer returns an option attaching a tracer (and the track name
// its spans appear under) to the engine. A nil tracer leaves tracing
// off.
func WithTracer(t *simtrace.Tracer, track string) EngineOption {
	return func(e *Engine) { e.SetTracer(t, track) }
}

// WithFaultPlan returns an option pricing the engine's offloads on the
// degraded machine the plan describes: lossy or derated PCIe DMA,
// throttled kernels, and whole-coprocessor failure (handled by falling
// back to the host). A nil or empty plan changes nothing.
func WithFaultPlan(p *simfault.Plan) EngineOption {
	return func(e *Engine) {
		e.faults = p
		e.fabric = nil
		if f, ok := p.Fabric("pcie:" + e.cfg.Path.String()); ok {
			e.fabric = &f
		}
	}
}

// WithHostFallback returns an option supplying the execution model for
// kernels that complete on the host after their target coprocessor
// failed: convert maps a kernel's nominal Phi execution time to its
// host execution time. Without this option fallback kernels are priced
// at Phi speed, a conservative stand-in.
func WithHostFallback(convert func(phiKernel vclock.Time) vclock.Time) EngineOption {
	return func(e *Engine) { e.fallback = convert }
}

// target returns the coprocessor this engine dispatches to: the remote
// end of its PCIe path.
func (e *Engine) target() machine.Device {
	if e.cfg.Path == pcie.HostPhi0 {
		return machine.Phi0
	}
	return machine.Phi1
}

// NewEngine returns an engine with the given configuration.
func NewEngine(cfg Config, opts ...EngineOption) *Engine {
	e := &Engine{cfg: cfg}
	for _, o := range opts {
		o(e)
	}
	return e
}

// SetTracer attaches a tracer to the engine: each offload invocation
// emits its stage spans (marshal, DMA each way, scatter, kernel) on the
// given track. A nil tracer turns tracing off.
func (e *Engine) SetTracer(t *simtrace.Tracer, track string) {
	e.tracer = t
	e.track = track
}

// stage charges one stage of a synchronous offload to the engine's
// virtual timeline and, when tracing is on, lays it onto the trace
// track. The clock always advances so failure times ("Phi0 dead from
// t=2ms") land correctly even in untraced runs.
func (e *Engine) stage(name string, cat simtrace.Category, d vclock.Time, bytes int64) {
	t0 := e.clock.Now()
	if d > 0 {
		e.clock.Advance(d)
	}
	if e.tracer != nil {
		e.tracer.Span(e.track, cat, name, t0, e.clock.Now(), bytes)
	}
}

// retryStage charges the timeout-and-backoff stall of a dropped DMA
// transfer and records it in the fault ledger and trace. It returns
// immediately for the common healthy case.
func (e *Engine) retryStage(attempts int, bytes int64) {
	if attempts <= 1 || e.fabric == nil {
		return
	}
	penalty := e.fabric.RetryPenalty(attempts)
	e.stage("retry[pcie:"+e.cfg.Path.String()+"]", simtrace.CatFault, penalty, bytes)
	if e.tracer != nil {
		e.tracer.Count(simtrace.CatFault, "offload_retries", int64(attempts-1))
	}
	e.report.Retries += attempts - 1
	e.report.TransferTime += penalty
}

// traceCounts bumps the per-invocation offload counters.
func (e *Engine) traceCounts(inBytes, outBytes int64) {
	e.tracer.Count(simtrace.CatOffload, "invocations", 1)
	e.tracer.Count(simtrace.CatOffload, "bytes_in", inBytes)
	e.tracer.Count(simtrace.CatOffload, "bytes_out", outBytes)
}

// Report returns the cumulative ledger.
func (e *Engine) Report() Report { return e.report }

// ResetReport clears the ledger between experiments.
func (e *Engine) ResetReport() { e.report = Report{} }

// Offload executes one offloaded region: inBytes are shipped to the Phi,
// kernelTime of work runs there, outBytes come back. body, when non-nil,
// really executes (so offloaded NPB kernels compute genuine results).
// The return value is the invocation's total virtual time as seen by the
// host program, which blocks for the duration (synchronous offload).
//
// Under a fault plan the invocation prices the degraded machine: DMA is
// derated and may stall on seeded drops, the kernel stretches through
// throttle windows, and a failed target coprocessor diverts the whole
// invocation to the host (see fallbackOffload) — the run still
// completes without error.
func (e *Engine) Offload(inBytes, outBytes int64, kernelTime vclock.Time, body func()) (vclock.Time, error) {
	if inBytes < 0 || outBytes < 0 {
		return 0, fmt.Errorf("offload: negative transfer size (%d in, %d out)", inBytes, outBytes)
	}
	if kernelTime < 0 {
		return 0, fmt.Errorf("offload: negative kernel time %v", kernelTime)
	}
	if e.faults.Failed(e.target(), e.clock.Now()) {
		return e.fallbackOffload(inBytes, outBytes, kernelTime, body)
	}
	if body != nil {
		body()
	}
	seq := e.invSeq
	e.invSeq++

	bytes := inBytes + outBytes
	host := e.cfg.HostSetup + vclock.Time(float64(bytes)/(e.cfg.HostCopyGBs*1e9))
	phi := e.cfg.PhiSetup + vclock.Time(float64(bytes)/(e.cfg.PhiCopyGBs*1e9))
	inT := e.transferTime(inBytes)
	outT := e.transferTime(outBytes)
	inAttempts, outAttempts := 1, 1
	if e.fabric != nil {
		if inBytes > 0 {
			inT = e.fabric.FlightTime(inT)
			inAttempts = e.faults.Attempts(*e.fabric, 0, 1, seq)
		}
		if outBytes > 0 {
			outT = e.fabric.FlightTime(outT)
			outAttempts = e.faults.Attempts(*e.fabric, 1, 0, seq)
		}
	}

	start := e.clock.Now()
	e.stage("marshal:host", simtrace.CatOffload, host, bytes)
	if inBytes > 0 {
		e.retryStage(inAttempts, inBytes)
		e.stage("dma:h2d", simtrace.CatPCIe, inT, inBytes)
	}
	e.stage("scatter:phi", simtrace.CatOffload, phi, bytes)
	kernel := e.faults.ComputeTime(e.target(), e.clock.Now(), kernelTime)
	e.stage("kernel", simtrace.CatCompute, kernel, 0)
	if outBytes > 0 {
		e.retryStage(outAttempts, outBytes)
		e.stage("dma:d2h", simtrace.CatPCIe, outT, outBytes)
	}
	if e.tracer != nil {
		e.traceCounts(inBytes, outBytes)
	}

	e.report.Invocations++
	e.report.BytesIn += inBytes
	e.report.BytesOut += outBytes
	e.report.HostTime += host
	e.report.TransferTime += inT + outT
	e.report.PhiTime += phi
	e.report.KernelTime += kernel

	return e.clock.Now() - start, nil
}

// fallbackOffload completes an invocation whose target coprocessor is
// failed. The first dispatch against the dead card pays the full
// detection deadline — every probe retransmission times out — after
// which the engine remembers the card is gone and dispatches straight
// to the host. The body still runs, so offloaded kernels keep computing
// genuine results; no PCIe or Phi-side costs are charged.
func (e *Engine) fallbackOffload(inBytes, outBytes int64, kernelTime vclock.Time, body func()) (vclock.Time, error) {
	if body != nil {
		body()
	}
	start := e.clock.Now()
	if !e.probed {
		e.probed = true
		f, ok := e.faults.Fabric("pcie:" + e.cfg.Path.String())
		if !ok {
			f = simfault.FabricFault{}
		}
		e.stage("probe[dead "+e.target().String()+"]", simtrace.CatFault, f.DetectionPenalty(), 0)
		if e.tracer != nil {
			e.tracer.Count(simtrace.CatFault, "offload_retries", int64(f.DetectionRetries()))
		}
		e.report.Retries += f.DetectionRetries()
		// The host blocks on the probe, so the deadline is host time.
		e.report.HostTime += f.DetectionPenalty()
	}
	kernel := kernelTime
	if e.fallback != nil {
		kernel = e.fallback(kernelTime)
	}
	// The host may itself be degraded (straggler or throttle entries).
	kernel = e.faults.ComputeTime(machine.Host, e.clock.Now(), kernel)
	e.stage("dispatch:host", simtrace.CatOffload, e.cfg.HostSetup, inBytes+outBytes)
	e.stage("kernel[host-fallback]", simtrace.CatCompute, kernel, 0)
	if e.tracer != nil {
		e.tracer.Count(simtrace.CatFault, "offload_fallbacks", 1)
	}
	e.report.Invocations++
	e.report.Fallbacks++
	e.report.HostTime += e.cfg.HostSetup
	e.report.FallbackTime += kernel
	return e.clock.Now() - start, nil
}

// pcieTransfer prices one DMA transfer under a config.
func pcieTransfer(cfg Config, bytes int) vclock.Time {
	return pcie.OffloadTransferTime(cfg.DMA, cfg.Path, bytes)
}
