package offload

import (
	"testing"

	"maia/internal/simfault"
	"maia/internal/simtrace"
	"maia/internal/vclock"
)

// lossyPlan drops every fourth-ish DMA with a heavy hand so short test
// runs are guaranteed to see retransmissions.
func lossyPlan() *simfault.Plan {
	return &simfault.Plan{Seed: 11, Fabrics: []simfault.FabricFault{{
		Fabric: "pcie:", Derate: 1.5, Delay: 4 * vclock.Microsecond, DropProb: 0.3,
	}}}
}

// A nil option list and an explicit empty plan price identically.
func TestOffloadEmptyPlanIdentical(t *testing.T) {
	run := func(opts ...EngineOption) (vclock.Time, Report) {
		e := NewEngine(DefaultConfig(), opts...)
		var total vclock.Time
		for i := 0; i < 5; i++ {
			tt, err := e.Offload(1<<20, 1<<19, 300*vclock.Microsecond, nil)
			if err != nil {
				t.Fatal(err)
			}
			total += tt
		}
		return total, e.Report()
	}
	cleanT, cleanR := run()
	emptyT, emptyR := run(WithFaultPlan(&simfault.Plan{}))
	if cleanT != emptyT || cleanR != emptyR {
		t.Fatalf("empty plan perturbed the engine: %v/%+v vs %v/%+v", emptyT, emptyR, cleanT, cleanR)
	}
}

// A lossy PCIe fabric slows synchronous offloads, charges retries to the
// ledger, and stays deterministic run to run.
func TestOffloadLossyDMARetries(t *testing.T) {
	run := func(opts ...EngineOption) (vclock.Time, Report) {
		e := NewEngine(DefaultConfig(), opts...)
		var total vclock.Time
		for i := 0; i < 20; i++ {
			tt, err := e.Offload(1<<20, 1<<19, 100*vclock.Microsecond, nil)
			if err != nil {
				t.Fatal(err)
			}
			total += tt
		}
		return total, e.Report()
	}
	cleanT, _ := run()
	lossyT, lossyR := run(WithFaultPlan(lossyPlan()))
	if lossyT <= cleanT {
		t.Fatalf("lossy DMA did not slow offloads: %v <= %v", lossyT, cleanT)
	}
	if lossyR.Retries == 0 {
		t.Fatal("30%% drop probability produced no retries over 20 invocations")
	}
	if lossyR.Fallbacks != 0 {
		t.Fatalf("no failure in the plan, yet %d fallbacks", lossyR.Fallbacks)
	}
	again, againR := run(WithFaultPlan(lossyPlan()))
	if again != lossyT || againR != lossyR {
		t.Fatalf("faulted offloads not deterministic: %v vs %v", again, lossyT)
	}
}

// A failed coprocessor diverts every invocation to the host: the run
// completes without error, the detection deadline is paid exactly once,
// and the fallback is visible in trace spans and counters.
func TestOffloadFailedPhiFallsBackToHost(t *testing.T) {
	tr := simtrace.New()
	e := NewEngine(DefaultConfig(),
		WithFaultPlan(simfault.Phi0Down()),
		WithHostFallback(func(k vclock.Time) vclock.Time { return 3 * k }),
		WithTracer(tr, "offload"))
	const kernel = 200 * vclock.Microsecond
	first, err := e.Offload(1<<20, 1<<19, kernel, nil)
	if err != nil {
		t.Fatalf("failed-target offload returned an error: %v", err)
	}
	second, err := e.Offload(1<<20, 1<<19, kernel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first <= second {
		t.Fatalf("detection deadline not front-loaded: first %v <= second %v", first, second)
	}
	if second != e.cfg.HostSetup+3*kernel {
		t.Fatalf("steady-state fallback invocation cost %v, want %v", second, e.cfg.HostSetup+3*kernel)
	}

	r := e.Report()
	if r.Fallbacks != 2 || r.Invocations != 2 {
		t.Fatalf("report %+v: want 2 invocations, both fallbacks", r)
	}
	if r.BytesIn != 0 || r.BytesOut != 0 || r.TransferTime != 0 || r.PhiTime != 0 {
		t.Fatalf("fallback charged PCIe/Phi components: %+v", r)
	}
	if r.FallbackTime != 6*kernel {
		t.Fatalf("fallback time %v, want %v", r.FallbackTime, 6*kernel)
	}
	if r.Retries == 0 {
		t.Fatal("dead-device detection charged no probe retries")
	}
	if r.Total() != first+second {
		t.Fatalf("ledger total %v != observed %v", r.Total(), first+second)
	}

	var probes, fallbackKernels int
	for _, s := range tr.Spans() {
		switch {
		case s.Cat == simtrace.CatFault && s.Dur() > 0:
			probes++
		case s.Name == "kernel[host-fallback]":
			fallbackKernels++
		}
	}
	if probes != 1 {
		t.Fatalf("%d fault probe spans, want exactly 1 (paid once)", probes)
	}
	if fallbackKernels != 2 {
		t.Fatalf("%d host-fallback kernel spans, want 2", fallbackKernels)
	}
	var fallbacks int64
	for _, c := range tr.Counters() {
		if c.Key.Cat == simtrace.CatFault && c.Key.Name == "offload_fallbacks" {
			fallbacks = c.Value
		}
	}
	if fallbacks != 2 {
		t.Fatalf("offload_fallbacks counter %d, want 2", fallbacks)
	}
}

// A failure with At > 0 switches mid-run: invocations before the failure
// offload normally, invocations after it fall back.
func TestOffloadLateFailureSwitchesMidRun(t *testing.T) {
	plan := &simfault.Plan{Seed: 9, Failures: []simfault.Failure{
		{Device: simfault.Phi0Down().Failures[0].Device, At: 500 * vclock.Microsecond},
	}}
	e := NewEngine(DefaultConfig(), WithFaultPlan(plan))
	for i := 0; i < 6; i++ {
		if _, err := e.Offload(1<<20, 1<<19, 200*vclock.Microsecond, nil); err != nil {
			t.Fatal(err)
		}
	}
	r := e.Report()
	if r.Fallbacks == 0 || r.Fallbacks == r.Invocations {
		t.Fatalf("late failure should split the run: %d/%d fallbacks", r.Fallbacks, r.Invocations)
	}
	if r.Invocations != 6 {
		t.Fatalf("run did not complete: %d invocations", r.Invocations)
	}
}

// The pipelined schedule also completes when the target is dead, and the
// body still executes for every chunk.
func TestOffloadPipelinedFailover(t *testing.T) {
	e := NewEngine(DefaultConfig(),
		WithFaultPlan(simfault.Phi0Down()),
		WithHostFallback(func(k vclock.Time) vclock.Time { return 2 * k }))
	ran := 0
	total, err := e.OffloadPipelined(4, 1<<20, 1<<19, 100*vclock.Microsecond,
		func(chunk int) { ran++ })
	if err != nil {
		t.Fatalf("pipelined failover errored: %v", err)
	}
	if ran != 4 {
		t.Fatalf("body ran %d times, want 4", ran)
	}
	if total <= 0 {
		t.Fatal("failover run consumed no virtual time")
	}
	if r := e.Report(); r.Fallbacks != 4 {
		t.Fatalf("%d fallbacks, want 4", r.Fallbacks)
	}
}

// Pipelined offloads under a lossy fabric slow down, stay deterministic,
// and keep the ledger total consistent with per-component sums.
func TestOffloadPipelinedLossy(t *testing.T) {
	run := func(opts ...EngineOption) (vclock.Time, Report) {
		e := NewEngine(DefaultConfig(), opts...)
		total, err := e.OffloadPipelined(16, 1<<20, 1<<19, 100*vclock.Microsecond, nil)
		if err != nil {
			t.Fatal(err)
		}
		return total, e.Report()
	}
	cleanT, _ := run()
	lossy1T, lossy1R := run(WithFaultPlan(lossyPlan()))
	lossy2T, lossy2R := run(WithFaultPlan(lossyPlan()))
	if lossy1T <= cleanT {
		t.Fatalf("lossy pipeline not slower: %v <= %v", lossy1T, cleanT)
	}
	if lossy1T != lossy2T || lossy1R != lossy2R {
		t.Fatal("lossy pipeline not deterministic")
	}
	if lossy1R.Retries == 0 {
		t.Fatal("lossy pipeline recorded no retries")
	}
}
