package offload

import (
	"strings"
	"testing"

	"maia/internal/vclock"
)

func TestOffloadAccounting(t *testing.T) {
	e := NewEngine(DefaultConfig())
	total, err := e.Offload(1<<20, 1<<19, 5*vclock.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := e.Report()
	if r.Invocations != 1 || r.BytesIn != 1<<20 || r.BytesOut != 1<<19 {
		t.Fatalf("ledger counts wrong: %+v", r)
	}
	if r.KernelTime != 5*vclock.Millisecond {
		t.Fatalf("kernel time %v", r.KernelTime)
	}
	if got := r.Total(); got != total {
		t.Fatalf("Total() = %v, invocation returned %v", got, total)
	}
	if r.Overhead() != r.HostTime+r.TransferTime+r.PhiTime {
		t.Fatal("Overhead decomposition inconsistent")
	}
	if r.HostTime <= 0 || r.TransferTime <= 0 || r.PhiTime <= 0 {
		t.Fatalf("all three overhead components must be positive: %+v", r)
	}
}

func TestOffloadBodyRuns(t *testing.T) {
	e := NewEngine(DefaultConfig())
	ran := false
	if _, err := e.Offload(0, 0, 0, func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("body did not run")
	}
	// Zero-byte offload still pays the setup costs.
	r := e.Report()
	if r.HostTime < DefaultConfig().HostSetup || r.PhiTime < DefaultConfig().PhiSetup {
		t.Fatal("setup costs not charged on empty offload")
	}
	if r.TransferTime != 0 {
		t.Fatal("no data, no transfer time")
	}
}

func TestOffloadValidation(t *testing.T) {
	e := NewEngine(DefaultConfig())
	if _, err := e.Offload(-1, 0, 0, nil); err == nil {
		t.Error("negative inBytes accepted")
	}
	if _, err := e.Offload(0, -1, 0, nil); err == nil {
		t.Error("negative outBytes accepted")
	}
	if _, err := e.Offload(0, 0, -vclock.Nanosecond, nil); err == nil {
		t.Error("negative kernel time accepted")
	}
}

// The Figure 26/27 relationship: many small offloads cost more overhead
// than one big offload moving the same total data.
func TestGranularityTradeoff(t *testing.T) {
	const totalBytes = 64 << 20
	const pieces = 256

	fine := NewEngine(DefaultConfig())
	for i := 0; i < pieces; i++ {
		if _, err := fine.Offload(totalBytes/pieces, totalBytes/pieces, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	coarse := NewEngine(DefaultConfig())
	if _, err := coarse.Offload(totalBytes, totalBytes, 0, nil); err != nil {
		t.Fatal(err)
	}
	if fine.Report().Overhead() <= coarse.Report().Overhead() {
		t.Fatalf("fine-grained overhead (%v) must exceed coarse (%v)",
			fine.Report().Overhead(), coarse.Report().Overhead())
	}
	if fine.Report().BytesIn != coarse.Report().BytesIn {
		t.Fatal("test moved different data volumes")
	}
}

func TestResetReport(t *testing.T) {
	e := NewEngine(DefaultConfig())
	if _, err := e.Offload(100, 100, vclock.Microsecond, nil); err != nil {
		t.Fatal(err)
	}
	e.ResetReport()
	if e.Report() != (Report{}) {
		t.Fatalf("ResetReport left %+v", e.Report())
	}
}

func TestReportString(t *testing.T) {
	e := NewEngine(DefaultConfig())
	if _, err := e.Offload(10, 20, 0, nil); err != nil {
		t.Fatal(err)
	}
	s := e.Report().String()
	if !strings.Contains(s, "offloads=1") || !strings.Contains(s, "in=10B") {
		t.Fatalf("Report.String = %q", s)
	}
}
