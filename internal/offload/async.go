package offload

import (
	"fmt"

	"maia/internal/simtrace"
	"maia/internal/vclock"
)

// Asynchronous offload: the extension Intel's offload pragmas expose as
// signal/wait clauses. The paper's offload results are synchronous
// (Section 6.9.1.4); pipelining transfers against kernel execution is
// the mitigation its conclusions point toward ("one should carefully
// choose the granularity of the offloads to offset the overhead of the
// data transfer"). OffloadPipelined implements a classic three-stage
// pipeline — host->Phi DMA, kernel, Phi->host DMA — with double
// buffering, so the slowest stage sets the sustained rate.

// OffloadPipelined runs `chunks` offloaded pieces with transfers
// overlapped against execution. Each chunk ships inBytes, runs
// kernelTime on the coprocessor, and returns outBytes. body (when
// non-nil) really executes once per chunk, in order. The return value
// is the pipeline's makespan; the engine's ledger accumulates the same
// totals a synchronous run would (the work done is identical — only the
// schedule differs).
func (e *Engine) OffloadPipelined(chunks int, inBytes, outBytes int64,
	kernelTime vclock.Time, body func(chunk int)) (vclock.Time, error) {
	if chunks < 1 {
		return 0, fmt.Errorf("offload: pipelined run needs at least one chunk")
	}
	if inBytes < 0 || outBytes < 0 {
		return 0, fmt.Errorf("offload: negative transfer size (%d in, %d out)", inBytes, outBytes)
	}
	if kernelTime < 0 {
		return 0, fmt.Errorf("offload: negative kernel time %v", kernelTime)
	}
	if e.faults.Failed(e.target(), e.clock.Now()) {
		// The coprocessor is gone: no pipeline to run. Every chunk
		// completes on the host, serially.
		start := e.clock.Now()
		for k := 0; k < chunks; k++ {
			var b func()
			if body != nil {
				kk := k
				b = func() { body(kk) }
			}
			if _, err := e.fallbackOffload(inBytes, outBytes, kernelTime, b); err != nil {
				return 0, err
			}
		}
		return e.clock.Now() - start, nil
	}

	// Per-chunk stage costs. Host-side marshalling gates the inbound
	// DMA; Phi-side scatter gates the kernel start. An active fault plan
	// derates the DMA legs of the pipeline.
	inDMA := e.transferTime(inBytes)
	outDMA := e.transferTime(outBytes)
	if e.fabric != nil {
		if inBytes > 0 {
			inDMA = e.fabric.FlightTime(inDMA)
		}
		if outBytes > 0 {
			outDMA = e.fabric.FlightTime(outDMA)
		}
	}
	inT := inDMA + e.cfg.HostSetup +
		vclock.Time(float64(inBytes)/(e.cfg.HostCopyGBs*1e9))
	phiSide := e.cfg.PhiSetup + vclock.Time(float64(inBytes+outBytes)/(e.cfg.PhiCopyGBs*1e9))
	outT := outDMA +
		vclock.Time(float64(outBytes)/(e.cfg.HostCopyGBs*1e9))

	base := e.clock.Now()
	var inDone, kernelDone, outDone vclock.Time
	for k := 0; k < chunks; k++ {
		if body != nil {
			body(k)
		}
		seq := e.invSeq
		e.invSeq++

		// Seeded drops stall this chunk's DMA legs before the successful
		// flight; the stall is charged to the serial DMA engine.
		var inPen, outPen vclock.Time
		chunkRetries := 0
		if e.fabric != nil {
			if a := e.faults.Attempts(*e.fabric, 0, 1, seq); a > 1 && inBytes > 0 {
				inPen = e.fabric.RetryPenalty(a)
				chunkRetries += a - 1
			}
			if a := e.faults.Attempts(*e.fabric, 1, 0, seq); a > 1 && outBytes > 0 {
				outPen = e.fabric.RetryPenalty(a)
				chunkRetries += a - 1
			}
			e.report.Retries += chunkRetries
		}

		inDone += inPen + inT // DMA engine is serial across chunks
		start := vclock.Max(inDone, kernelDone)
		// The kernel may stretch through a throttle window on the Phi.
		kernelT := e.faults.ComputeTime(e.target(), base+start, kernelTime) + phiSide
		kernelDone = start + kernelT
		outStart := vclock.Max(kernelDone, outDone)
		outDone = outStart + outPen + outT

		if e.tracer != nil {
			// The three pipeline stages overlap, so each gets its own
			// sub-track; span times are absolute on the engine timeline.
			if inPen > 0 {
				e.tracer.Span(e.track+"/h2d", simtrace.CatFault, "retry[pcie:"+e.cfg.Path.String()+"]",
					base+inDone-inT-inPen, base+inDone-inT, inBytes)
			}
			e.tracer.Span(e.track+"/h2d", simtrace.CatPCIe, "dma:h2d",
				base+inDone-inT, base+inDone, inBytes)
			e.tracer.Span(e.track+"/kernel", simtrace.CatCompute, "kernel",
				base+start, base+kernelDone, 0)
			if outPen > 0 {
				e.tracer.Span(e.track+"/d2h", simtrace.CatFault, "retry[pcie:"+e.cfg.Path.String()+"]",
					base+outStart, base+outStart+outPen, outBytes)
			}
			e.tracer.Span(e.track+"/d2h", simtrace.CatPCIe, "dma:d2h",
				base+outStart+outPen, base+outDone, outBytes)
			if chunkRetries > 0 {
				e.tracer.Count(simtrace.CatFault, "offload_retries", int64(chunkRetries))
			}
			e.traceCounts(inBytes, outBytes)
		}

		e.report.Invocations++
		e.report.BytesIn += inBytes
		e.report.BytesOut += outBytes
		e.report.HostTime += e.cfg.HostSetup +
			vclock.Time(float64(inBytes+outBytes)/(e.cfg.HostCopyGBs*1e9))
		e.report.TransferTime += inDMA + outDMA + inPen + outPen
		e.report.PhiTime += phiSide
		e.report.KernelTime += kernelT - phiSide
	}
	e.clock.AdvanceTo(base + outDone)
	return outDone, nil
}

// transferTime prices one direction of DMA (zero bytes cost nothing).
func (e *Engine) transferTime(bytes int64) vclock.Time {
	if bytes <= 0 {
		return 0
	}
	return pcieTransfer(e.cfg, int(bytes))
}
