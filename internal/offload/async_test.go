package offload

import (
	"testing"

	"maia/internal/vclock"
)

// Pipelined offload must beat the equivalent sequence of synchronous
// offloads whenever there is more than one chunk to overlap.
func TestPipelinedBeatsSynchronous(t *testing.T) {
	const chunks = 16
	const in, out = 8 << 20, 8 << 20
	kernel := 2 * vclock.Millisecond

	sync := NewEngine(DefaultConfig())
	var syncTotal vclock.Time
	for k := 0; k < chunks; k++ {
		tt, err := sync.Offload(in, out, kernel, nil)
		if err != nil {
			t.Fatal(err)
		}
		syncTotal += tt
	}
	async := NewEngine(DefaultConfig())
	asyncTotal, err := async.OffloadPipelined(chunks, in, out, kernel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if asyncTotal >= syncTotal {
		t.Fatalf("pipelined (%v) should beat synchronous (%v)", asyncTotal, syncTotal)
	}
	if speedup := syncTotal.Seconds() / asyncTotal.Seconds(); speedup < 1.3 {
		t.Errorf("pipelining speedup = %.2fx, want meaningful overlap", speedup)
	}
	// Same work was accounted: ledgers agree on volumes and kernel time.
	if sync.Report().BytesIn != async.Report().BytesIn ||
		sync.Report().KernelTime != async.Report().KernelTime ||
		sync.Report().Invocations != async.Report().Invocations {
		t.Fatalf("ledgers diverge: sync %+v async %+v", sync.Report(), async.Report())
	}
}

// The pipeline can never beat its slowest stage times the chunk count.
func TestPipelinedLowerBound(t *testing.T) {
	const chunks = 8
	const in, out = 4 << 20, 2 << 20
	kernel := 5 * vclock.Millisecond
	e := NewEngine(DefaultConfig())
	total, err := e.OffloadPipelined(chunks, in, out, kernel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if total < vclock.Time(chunks)*kernel {
		t.Fatalf("pipeline (%v) beat the kernel-stage bound (%v)", total, vclock.Time(chunks)*kernel)
	}
}

func TestPipelinedBodyRunsInOrder(t *testing.T) {
	e := NewEngine(DefaultConfig())
	var order []int
	if _, err := e.OffloadPipelined(5, 0, 0, vclock.Microsecond, func(k int) {
		order = append(order, k)
	}); err != nil {
		t.Fatal(err)
	}
	for i, k := range order {
		if k != i {
			t.Fatalf("chunk order %v", order)
		}
	}
}

func TestPipelinedValidation(t *testing.T) {
	e := NewEngine(DefaultConfig())
	if _, err := e.OffloadPipelined(0, 1, 1, 0, nil); err == nil {
		t.Error("zero chunks accepted")
	}
	if _, err := e.OffloadPipelined(1, -1, 0, 0, nil); err == nil {
		t.Error("negative bytes accepted")
	}
	if _, err := e.OffloadPipelined(1, 0, 0, -vclock.Nanosecond, nil); err == nil {
		t.Error("negative kernel accepted")
	}
}

// One chunk cannot overlap anything: pipelined time matches a single
// synchronous offload to within the scheduling model's bookkeeping.
func TestPipelinedSingleChunk(t *testing.T) {
	in, out := int64(1<<20), int64(1<<20)
	kernel := vclock.Millisecond
	syncT, err := NewEngine(DefaultConfig()).Offload(in, out, kernel, nil)
	if err != nil {
		t.Fatal(err)
	}
	asyncT, err := NewEngine(DefaultConfig()).OffloadPipelined(1, in, out, kernel, nil)
	if err != nil {
		t.Fatal(err)
	}
	ratio := asyncT.Seconds() / syncT.Seconds()
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("single-chunk pipelined %v vs sync %v", asyncT, syncT)
	}
}
