package maiad

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"maia/internal/harness"
)

// newTestServer boots a golden-seeded server over the paper registry.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{Golden: harness.EmbeddedGolden(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJob submits one spec body and decodes the response into out.
func postJob(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode
}

// A default job hits the golden-seeded cache without any engine run,
// and the served bytes equal the committed snapshot exactly.
func TestJobGoldenSeededHit(t *testing.T) {
	s, ts := newTestServer(t)
	var jr JobResponse
	if code := postJob(t, ts.URL+"/v1/jobs", `{"experiment":"table1"}`, &jr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if jr.Cache != CacheHit || !jr.Seeded {
		t.Fatalf("cache=%q seeded=%v, want seeded hit", jr.Cache, jr.Seeded)
	}
	want, err := fs.ReadFile(harness.EmbeddedGolden(), harness.GoldenName("table1"))
	if err != nil {
		t.Fatal(err)
	}
	if jr.Output != string(want) {
		t.Error("served output differs from golden snapshot")
	}
	if jr.Key != (harness.JobSpec{Experiment: "table1"}).Hash() {
		t.Errorf("key %q is not the default content address", jr.Key)
	}
	if got := s.Metrics().EngineRuns.Load(); got != 0 {
		t.Errorf("engine ran %d times on a seeded hit", got)
	}
}

// A cold job misses once, executes exactly once, and every later
// request serves the byte-identical output from the cache.
func TestJobColdThenHot(t *testing.T) {
	s, ts := newTestServer(t)
	const body = `{"experiment":"fig7","quick":true}`

	var cold JobResponse
	if code := postJob(t, ts.URL+"/v1/jobs", body, &cold); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if cold.Cache != CacheMiss {
		t.Fatalf("first request: cache=%q, want miss", cold.Cache)
	}
	exp, _ := harness.Paper().ByID("fig7")
	env, err := harness.JobSpec{Experiment: "fig7", Quick: true}.Env()
	if err != nil {
		t.Fatal(err)
	}
	want, err := harness.RenderBytes(exp, env)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Output != string(want) {
		t.Error("cold output differs from a direct engine render")
	}

	var hot JobResponse
	postJob(t, ts.URL+"/v1/jobs", body, &hot)
	if hot.Cache != CacheHit {
		t.Fatalf("second request: cache=%q, want hit", hot.Cache)
	}
	if hot.Output != cold.Output {
		t.Error("cache hit is not byte-identical to the cold run")
	}
	if got := s.Metrics().EngineRuns.Load(); got != 1 {
		t.Errorf("engine ran %d times for one distinct job", got)
	}

	var byKey JobResponse
	resp, err := http.Get(ts.URL + "/v1/jobs/" + cold.Key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&byKey); err != nil {
		t.Fatal(err)
	}
	if byKey.Output != cold.Output {
		t.Error("lookup by key differs from the cold run")
	}
}

// N concurrent identical requests execute the engine exactly once: the
// leader misses, the rest coalesce onto its execution (or hit the cache
// it fills). EngineRuns is the pinned counter.
func TestJobConcurrentRequestsCoalesce(t *testing.T) {
	release := make(chan struct{})
	var runs atomic.Int64
	reg := harness.NewRegistry()
	if err := reg.Register(harness.Experiment{
		ID:    "block",
		Title: "blocks until released",
		Run: func(w io.Writer, env harness.Env) error {
			runs.Add(1)
			<-release
			_, err := fmt.Fprintln(w, "blocked payload")
			return err
		},
	}); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Registry: reg, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 8
	statuses := make([]string, n)
	outputs := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var jr JobResponse
			if code := postJob(t, ts.URL+"/v1/jobs", `{"experiment":"block"}`, &jr); code != http.StatusOK {
				t.Errorf("client %d: status %d", i, code)
			}
			statuses[i] = jr.Cache
			outputs[i] = jr.Output
		}(i)
	}
	// Hold the leader in the engine until every client has had time to
	// send its request and park on the coalescer.
	for runs.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := s.Metrics().EngineRuns.Load(); got != 1 {
		t.Fatalf("engine ran %d times for %d identical concurrent jobs", got, n)
	}
	if runs.Load() != 1 {
		t.Fatalf("experiment body ran %d times", runs.Load())
	}
	counts := map[string]int{}
	for i, st := range statuses {
		counts[st]++
		if !strings.Contains(outputs[i], "blocked payload") {
			t.Errorf("client %d output %q", i, outputs[i])
		}
	}
	if counts[CacheMiss] != 1 {
		t.Errorf("%d misses, want exactly 1 (statuses: %v)", counts[CacheMiss], counts)
	}
	if counts[CacheCoalesced] < 1 {
		t.Errorf("no request coalesced (statuses: %v)", counts)
	}
	if counts[CacheMiss]+counts[CacheCoalesced]+counts[CacheHit] != n {
		t.Errorf("unexpected statuses: %v", counts)
	}
}

// A sweep batches cold jobs through the parallel engine and splits the
// shared buffer back into per-experiment outputs that match direct
// renders; a second identical sweep is all cache hits.
func TestSweep(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"specs":[
		{"experiment":"fig7","quick":true},
		{"experiment":"fig13","quick":true},
		{"experiment":"fig17","quick":true},
		{"experiment":"table1"}
	]}`
	var sr SweepResponse
	if code := postJob(t, ts.URL+"/v1/sweeps", body, &sr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(sr.Results) != 4 {
		t.Fatalf("%d results", len(sr.Results))
	}
	env, err := harness.JobSpec{Quick: true}.Env()
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range []string{"fig7", "fig13", "fig17"} {
		r := sr.Results[i]
		if r.Cache != CacheMiss {
			t.Errorf("%s: cache=%q, want miss", id, r.Cache)
		}
		exp, _ := harness.Paper().ByID(id)
		want, err := harness.RenderBytes(exp, env)
		if err != nil {
			t.Fatal(err)
		}
		if r.Output != string(want) {
			t.Errorf("%s: sweep output differs from direct render", id)
		}
		if r.Result.ID != id || r.Result.Bytes != len(want) {
			t.Errorf("%s: result metadata %+v", id, r.Result)
		}
	}
	if r := sr.Results[3]; r.Cache != CacheHit || !r.Seeded {
		t.Errorf("seeded default job in sweep: cache=%q seeded=%v", r.Cache, r.Seeded)
	}

	var again SweepResponse
	postJob(t, ts.URL+"/v1/sweeps", body, &again)
	for i, r := range again.Results {
		if r.Cache != CacheHit {
			t.Errorf("repeat sweep result %d: cache=%q, want hit", i, r.Cache)
		}
		if r.Output != sr.Results[i].Output {
			t.Errorf("repeat sweep result %d not byte-identical", i)
		}
	}
}

// A traced job bypasses the cache, attaches the requested trace form,
// and still leaves its output cached for everyone else.
func TestJobTrace(t *testing.T) {
	s, ts := newTestServer(t)
	const body = `{"experiment":"fig13","quick":true}`

	var summary JobResponse
	if code := postJob(t, ts.URL+"/v1/jobs?trace=summary", body, &summary); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if summary.Cache != CacheBypass {
		t.Fatalf("cache=%q, want bypass", summary.Cache)
	}

	var chrome JobResponse
	if code := postJob(t, ts.URL+"/v1/jobs?trace=chrome", body, &chrome); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if chrome.Cache != CacheBypass || len(chrome.Trace) == 0 || !json.Valid(chrome.Trace) {
		t.Fatalf("chrome trace: cache=%q, %d raw bytes", chrome.Cache, len(chrome.Trace))
	}
	if chrome.Output != summary.Output {
		t.Error("traced runs disagree on output bytes")
	}

	var er ErrorResponse
	if code := postJob(t, ts.URL+"/v1/jobs?trace=flame", body, &er); code != http.StatusBadRequest {
		t.Fatalf("unknown trace mode: status %d", code)
	}

	// The bypass run populated the cache: the untraced job now hits.
	var jr JobResponse
	postJob(t, ts.URL+"/v1/jobs", body, &jr)
	if jr.Cache != CacheHit || jr.Output != summary.Output {
		t.Errorf("after bypass: cache=%q, byte-identical=%v", jr.Cache, jr.Output == summary.Output)
	}
	if got := s.Metrics().EngineRuns.Load(); got != 2 {
		t.Errorf("engine ran %d times (two traced runs expected)", got)
	}
}

// Every typed validation error maps to its wire code and status.
func TestJobErrorTaxonomy(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body, code string
		status           int
	}{
		{"unknown experiment", `{"experiment":"nope"}`, "unknown_experiment", http.StatusNotFound},
		{"missing experiment", `{}`, "unknown_experiment", http.StatusNotFound},
		{"bad nodes", `{"experiment":"table1","nodes":3}`, "invalid_nodes", http.StatusBadRequest},
		{"unknown fault plan", `{"experiment":"table1","fault_plan":"nope"}`, "unknown_fault_plan", http.StatusBadRequest},
		{"orphan seed", `{"experiment":"table1","seed":5}`, "invalid_seed", http.StatusBadRequest},
		{"bad schema version", `{"experiment":"table1","schema_version":9}`, "unsupported_schema_version", http.StatusBadRequest},
		{"bad model key", `{"experiment":"table1","model":{"bogus":1}}`, "invalid_model_override", http.StatusBadRequest},
		{"unknown field", `{"experiment":"table1","surprise":1}`, "bad_request", http.StatusBadRequest},
		{"malformed json", `{`, "bad_request", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var er ErrorResponse
			code := postJob(t, ts.URL+"/v1/jobs", tc.body, &er)
			if code != tc.status || er.Code != tc.code {
				t.Errorf("got status=%d code=%q, want status=%d code=%q (%s)",
					code, er.Code, tc.status, tc.code, er.Error)
			}
		})
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound || er.Code != "unknown_key" {
		t.Errorf("cold lookup: status=%d code=%q", resp.StatusCode, er.Code)
	}
}

// The experiments listing reports every registry entry as cached once
// the goldens are seeded.
func TestExperimentsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []ExperimentInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != harness.Paper().Len() {
		t.Fatalf("%d experiments listed, registry has %d", len(infos), harness.Paper().Len())
	}
	for _, info := range infos {
		if !info.Cached {
			t.Errorf("%s: default job not cached after seeding", info.ID)
		}
		if info.DefaultKey != (harness.JobSpec{Experiment: info.ID}).Hash() {
			t.Errorf("%s: wrong default key", info.ID)
		}
	}
}

// /metrics and /healthz reflect the traffic that went through.
func TestMetricsAndHealthz(t *testing.T) {
	s, ts := newTestServer(t)
	var jr JobResponse
	postJob(t, ts.URL+"/v1/jobs", `{"experiment":"table1"}`, &jr)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(prom, []byte("maiad_cache_hits_total 1")) {
		t.Errorf("prom exposition missing hit counter:\n%s", prom)
	}
	if !bytes.Contains(prom, []byte(`maiad_request_seconds_count{endpoint="jobs"} 1`)) {
		t.Errorf("prom exposition missing jobs latency count:\n%s", prom)
	}

	resp, err = http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.CacheHits != 1 || snap.CacheEntries != s.Cache().Len() {
		t.Errorf("snapshot: %+v", snap)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.Experiments != harness.Paper().Len() || h.CacheEntries != s.Cache().Len() {
		t.Errorf("healthz: %+v", h)
	}
}

// A default fleet job hits the golden-seeded cache through POST
// /v1/fleet without any engine run, byte-identical to the snapshot.
func TestFleetGoldenSeededHit(t *testing.T) {
	s, ts := newTestServer(t)
	var jr JobResponse
	if code := postJob(t, ts.URL+"/v1/fleet", `{"experiment":"ext-fleet-recovery"}`, &jr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if jr.Cache != CacheHit || !jr.Seeded {
		t.Fatalf("cache=%q seeded=%v, want seeded hit", jr.Cache, jr.Seeded)
	}
	want, err := fs.ReadFile(harness.EmbeddedGolden(), harness.GoldenName("ext-fleet-recovery"))
	if err != nil {
		t.Fatal(err)
	}
	if jr.Output != string(want) {
		t.Error("served fleet output differs from golden snapshot")
	}
	if got := s.Metrics().EngineRuns.Load(); got != 0 {
		t.Errorf("engine ran %d times on a seeded fleet hit", got)
	}
}

// A cold fleet job (v2 fleet block) misses once, the hot repeat is a
// byte-identical cache hit, and the key resolves on GET /v1/fleet/{key}.
func TestFleetColdThenHot(t *testing.T) {
	s, ts := newTestServer(t)
	const body = `{"experiment":"ext-fleet-recovery","quick":true,"fleet":{"nodes":8,"scheduler":"round-robin"},"seed":3}`

	var cold JobResponse
	if code := postJob(t, ts.URL+"/v1/fleet", body, &cold); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if cold.Cache != CacheMiss {
		t.Fatalf("first fleet request: cache=%q, want miss", cold.Cache)
	}
	if cold.Spec.SchemaVersion != 2 || cold.Spec.Fleet == nil {
		t.Fatalf("normalized fleet spec echo: %+v", cold.Spec)
	}

	var hot JobResponse
	postJob(t, ts.URL+"/v1/fleet", body, &hot)
	if hot.Cache != CacheHit || hot.Output != cold.Output {
		t.Fatalf("second fleet request: cache=%q byte-identical=%v", hot.Cache, hot.Output == cold.Output)
	}
	if got := s.Metrics().EngineRuns.Load(); got != 1 {
		t.Errorf("engine ran %d times for one distinct fleet job", got)
	}

	resp, err := http.Get(ts.URL + "/v1/fleet/" + cold.Key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var byKey JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&byKey); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || byKey.Output != cold.Output {
		t.Errorf("fleet lookup by key: status=%d byte-identical=%v", resp.StatusCode, byKey.Output == cold.Output)
	}
}

// N concurrent identical fleet posts execute the engine exactly once —
// the coalescer and cache serve everyone else byte-identically.
func TestFleetConcurrentPostsCoalesce(t *testing.T) {
	s, ts := newTestServer(t)
	const body = `{"experiment":"ext-fleet-mtbf","quick":true,"fleet":{"nodes":8},"seed":7}`

	const n = 8
	outputs := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var jr JobResponse
			if code := postJob(t, ts.URL+"/v1/fleet", body, &jr); code != http.StatusOK {
				t.Errorf("client %d: status %d", i, code)
			}
			outputs[i] = jr.Output
		}(i)
	}
	wg.Wait()

	if got := s.Metrics().EngineRuns.Load(); got != 1 {
		t.Fatalf("engine ran %d times for %d identical concurrent fleet posts", got, n)
	}
	for i := 1; i < n; i++ {
		if outputs[i] != outputs[0] {
			t.Fatalf("client %d output differs from client 0", i)
		}
	}
}

// Fleet jobs route only through /v1/fleet: the plain-job and sweep
// endpoints reject them, and /v1/fleet rejects non-fleet experiments.
func TestFleetEndpointRouting(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, url, body, code string
	}{
		{"fleet block on /v1/jobs", "/v1/jobs",
			`{"experiment":"ext-fleet-recovery","fleet":{"nodes":8}}`, "fleet_endpoint"},
		{"fleet section on /v1/jobs", "/v1/jobs",
			`{"experiment":"ext-fleet-mtbf"}`, "fleet_endpoint"},
		{"fleet spec in sweep", "/v1/sweeps",
			`{"specs":[{"experiment":"fig7","quick":true},{"experiment":"ext-fleet-recovery"}]}`, "fleet_endpoint"},
		{"plain job on /v1/fleet", "/v1/fleet",
			`{"experiment":"fig7","quick":true}`, "fleet_not_applicable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var er ErrorResponse
			code := postJob(t, ts.URL+tc.url, tc.body, &er)
			if code != http.StatusBadRequest || er.Code != tc.code {
				t.Errorf("got status=%d code=%q, want 400 %q (%s)", code, er.Code, tc.code, er.Error)
			}
		})
	}
}

// Every fleet-block validation error maps to its wire code.
func TestFleetErrorTaxonomy(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body, code string
	}{
		{"bad fleet nodes", `{"experiment":"ext-fleet-mtbf","fleet":{"nodes":513}}`, "invalid_fleet_nodes"},
		{"bad fleet duration", `{"experiment":"ext-fleet-mtbf","fleet":{"duration_s":86401}}`, "invalid_fleet_duration"},
		{"unknown scheduler", `{"experiment":"ext-fleet-mtbf","fleet":{"scheduler":"clairvoyant"}}`, "unknown_fleet_scheduler"},
		{"unknown mtbf profile", `{"experiment":"ext-fleet-mtbf","fleet":{"mtbf":"immortal"}}`, "unknown_fleet_mtbf"},
		{"bad health period", `{"experiment":"ext-fleet-mtbf","fleet":{"health_s":-1}}`, "invalid_fleet_health"},
		{"fleet block off-section", `{"experiment":"fig7","fleet":{"nodes":8}}`, "fleet_not_applicable"},
		{"fleet with fault plan", `{"experiment":"ext-fleet-mtbf","fault_plan":"degraded","fleet":{"nodes":8}}`, "fleet_not_applicable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var er ErrorResponse
			code := postJob(t, ts.URL+"/v1/fleet", tc.body, &er)
			if code != http.StatusBadRequest || er.Code != tc.code {
				t.Errorf("got status=%d code=%q, want 400 %q (%s)", code, er.Code, tc.code, er.Error)
			}
		})
	}
}

// The fleet endpoints report latency under their own histogram labels.
func TestFleetMetricsLabels(t *testing.T) {
	_, ts := newTestServer(t)
	var jr JobResponse
	postJob(t, ts.URL+"/v1/fleet", `{"experiment":"ext-fleet-recovery"}`, &jr)
	resp, err := http.Get(ts.URL + "/v1/fleet/" + jr.Key)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(prom, []byte(`maiad_request_seconds_count{endpoint="fleet"} 1`)) {
		t.Errorf("prom exposition missing fleet latency count:\n%s", prom)
	}
	if !bytes.Contains(prom, []byte(`maiad_request_seconds_count{endpoint="fleet_lookup"} 1`)) {
		t.Errorf("prom exposition missing fleet_lookup latency count:\n%s", prom)
	}
}
