package maiad

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// N concurrent callers of one key execute the function exactly once:
// the leader reports shared=false, every follower shares its value.
func TestGroupCoalesces(t *testing.T) {
	var g Group
	const n = 16
	var execs atomic.Int64
	var entered atomic.Int64
	release := make(chan struct{})

	type got struct {
		e      Entry
		shared bool
		err    error
	}
	results := make([]got, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entered.Add(1)
			e, shared, err := g.Do("k", func() (Entry, error) {
				execs.Add(1)
				<-release
				return Entry{Output: []byte("payload")}, nil
			})
			results[i] = got{e, shared, err}
		}(i)
	}
	// Hold the leader until every goroutine has at least launched; the
	// brief settle gives the stragglers time to reach Do and park on
	// the leader's WaitGroup.
	for entered.Load() < n {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if execs.Load() != 1 {
		t.Fatalf("fn executed %d times, want exactly 1", execs.Load())
	}
	leaders := 0
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("caller %d: %v", i, r.err)
		}
		if string(r.e.Output) != "payload" {
			t.Errorf("caller %d got %q", i, r.e.Output)
		}
		if !r.shared {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("%d leaders, want 1", leaders)
	}
	if g.InFlight() != 0 {
		t.Errorf("%d keys still in flight after completion", g.InFlight())
	}
}

// Followers share the leader's error too, and a completed key is
// forgotten — the next Do runs fresh.
func TestGroupSharesErrorsAndForgets(t *testing.T) {
	var g Group
	boom := errors.New("boom")
	if _, _, err := g.Do("k", func() (Entry, error) { return Entry{}, boom }); !errors.Is(err, boom) {
		t.Fatalf("leader error = %v", err)
	}
	calls := 0
	if _, shared, err := g.Do("k", func() (Entry, error) { calls++; return Entry{}, nil }); err != nil || shared {
		t.Fatalf("second Do: shared=%v err=%v", shared, err)
	}
	if calls != 1 {
		t.Fatalf("completed key was not forgotten (calls=%d)", calls)
	}
}

// Distinct keys never coalesce.
func TestGroupDistinctKeys(t *testing.T) {
	var g Group
	var execs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.Do(string(rune('a'+i)), func() (Entry, error) {
				execs.Add(1)
				return Entry{}, nil
			})
		}(i)
	}
	wg.Wait()
	if execs.Load() != 4 {
		t.Errorf("distinct keys executed %d times, want 4", execs.Load())
	}
}
