package maiad

import (
	"io/fs"
	"testing"

	"maia/internal/harness"
)

// Put/Get round-trips, and the first write wins on a duplicate key.
func TestCacheFirstWriteWins(t *testing.T) {
	c := NewCache()
	if _, ok := c.Get("k"); ok {
		t.Fatal("empty cache answered a get")
	}
	c.Put("k", Entry{Output: []byte("first")})
	c.Put("k", Entry{Output: []byte("second")})
	e, ok := c.Get("k")
	if !ok || string(e.Output) != "first" {
		t.Fatalf("got %q ok=%v, want first write to win", e.Output, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

// Seeding from the embedded goldens loads every registry experiment
// under its default-job content address, byte-identical to the files.
func TestSeedFromGolden(t *testing.T) {
	reg := harness.Paper()
	c := NewCache()
	n, err := c.SeedFromGolden(reg, harness.EmbeddedGolden())
	if err != nil {
		t.Fatal(err)
	}
	if n != reg.Len() || c.Len() != reg.Len() {
		t.Fatalf("seeded %d entries (cache %d), registry has %d", n, c.Len(), reg.Len())
	}
	for i, exp := range reg.All() {
		want, err := fs.ReadFile(harness.EmbeddedGolden(), harness.GoldenName(exp.ID))
		if err != nil {
			t.Fatalf("%s: %v", exp.ID, err)
		}
		key := harness.JobSpec{Experiment: exp.ID}.Hash()
		e, ok := c.Get(key)
		if !ok {
			t.Fatalf("%s: default key %s not seeded", exp.ID, key)
		}
		if string(e.Output) != string(want) {
			t.Errorf("%s: seeded bytes differ from golden", exp.ID)
		}
		if !e.Seeded || e.Result.ID != exp.ID || e.Result.Index != i ||
			e.Result.Bytes != len(want) || e.Result.SchemaVersion != harness.ResultSchemaVersion {
			t.Errorf("%s: entry metadata %+v", exp.ID, e.Result)
		}
	}
}

// A nil golden FS seeds nothing; missing snapshots are skipped.
func TestSeedFromGoldenMissing(t *testing.T) {
	c := NewCache()
	if n, err := c.SeedFromGolden(harness.Paper(), nil); err != nil || n != 0 {
		t.Fatalf("nil FS: n=%d err=%v", n, err)
	}
}
