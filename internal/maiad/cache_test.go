package maiad

import (
	"fmt"
	"io/fs"
	"sync"
	"testing"

	"maia/internal/harness"
)

// Put/Get round-trips, and the first write wins on a duplicate key.
func TestCacheFirstWriteWins(t *testing.T) {
	c := NewCache()
	if _, ok := c.Get("k"); ok {
		t.Fatal("empty cache answered a get")
	}
	c.Put("k", Entry{Output: []byte("first")})
	c.Put("k", Entry{Output: []byte("second")})
	e, ok := c.Get("k")
	if !ok || string(e.Output) != "first" {
		t.Fatalf("got %q ok=%v, want first write to win", e.Output, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

// Seeding from the embedded goldens loads every registry experiment
// under its default-job content address, byte-identical to the files.
func TestSeedFromGolden(t *testing.T) {
	reg := harness.Paper()
	c := NewCache()
	n, err := c.SeedFromGolden(reg, harness.EmbeddedGolden())
	if err != nil {
		t.Fatal(err)
	}
	if n != reg.Len() || c.Len() != reg.Len() {
		t.Fatalf("seeded %d entries (cache %d), registry has %d", n, c.Len(), reg.Len())
	}
	for i, exp := range reg.All() {
		want, err := fs.ReadFile(harness.EmbeddedGolden(), harness.GoldenName(exp.ID))
		if err != nil {
			t.Fatalf("%s: %v", exp.ID, err)
		}
		key := harness.JobSpec{Experiment: exp.ID}.Hash()
		e, ok := c.Get(key)
		if !ok {
			t.Fatalf("%s: default key %s not seeded", exp.ID, key)
		}
		if string(e.Output) != string(want) {
			t.Errorf("%s: seeded bytes differ from golden", exp.ID)
		}
		if !e.Seeded || e.Result.ID != exp.ID || e.Result.Index != i ||
			e.Result.Bytes != len(want) || e.Result.SchemaVersion != harness.ResultSchemaVersion {
			t.Errorf("%s: entry metadata %+v", exp.ID, e.Result)
		}
	}
}

// A nil golden FS seeds nothing; missing snapshots are skipped.
func TestSeedFromGoldenMissing(t *testing.T) {
	c := NewCache()
	if n, err := c.SeedFromGolden(harness.Paper(), nil); err != nil || n != 0 {
		t.Fatalf("nil FS: n=%d err=%v", n, err)
	}
}

// Sharding distributes hex content addresses and survives concurrent
// mixed traffic; first-write-wins holds per shard.
func TestCacheShardedConcurrent(t *testing.T) {
	c := NewCache()
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("%02x-key-%d", i*4, i) // spread across shards
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				for _, k := range keys {
					c.Put(k, Entry{Output: []byte(k)})
					if e, ok := c.Get(k); !ok || string(e.Output) != k {
						t.Errorf("worker %d: key %q read %q ok=%v", w, k, e.Output, ok)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() != len(keys) {
		t.Fatalf("cache holds %d entries, want %d", c.Len(), len(keys))
	}
}

// BenchmarkCacheParallelGet measures hit latency under concurrent
// readers — the sharded layout's reason to exist.
func BenchmarkCacheParallelGet(b *testing.B) {
	c := NewCache()
	spec := harness.JobSpec{Experiment: "fig22"}
	keys := make([]string, 256)
	for i := range keys {
		spec.Seed = uint64(i + 1)
		keys[i] = spec.Hash()
		c.Put(keys[i], Entry{Output: []byte("x")})
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, ok := c.Get(keys[i&255]); !ok {
				b.Fatal("miss on a stored key")
			}
			i++
		}
	})
}

// BenchmarkCacheParallelMixed adds a store every 64th operation — the
// warm-server traffic shape (hits dominate, occasional new results).
func BenchmarkCacheParallelMixed(b *testing.B) {
	c := NewCache()
	spec := harness.JobSpec{Experiment: "fig22"}
	keys := make([]string, 256)
	for i := range keys {
		spec.Seed = uint64(i + 1)
		keys[i] = spec.Hash()
		c.Put(keys[i], Entry{Output: []byte("x")})
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i&63 == 0 {
				c.Put(keys[i&255], Entry{Output: []byte("x")})
			} else {
				c.Get(keys[i&255])
			}
			i++
		}
	})
}
