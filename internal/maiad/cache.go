package maiad

import (
	"io/fs"
	"sync"

	"maia/internal/harness"
)

// Entry is one content-addressed result: the rendered experiment output
// plus its engine metadata, keyed by the JobSpec hash that produced it.
type Entry struct {
	// Result is the engine metadata in wire form.
	Result harness.Result
	// Output is the experiment's rendered bytes — exactly what a cold
	// run writes, so hits are byte-identical to first executions.
	Output []byte
	// Seeded marks entries loaded from golden snapshots at startup
	// rather than computed by this process.
	Seeded bool
}

// Cache is the content-addressed result store: an in-memory map from
// JobSpec hash to Entry. Experiment output is deterministic — the same
// spec always renders the same bytes — so entries never expire and
// never need invalidation; the map only grows with distinct jobs.
type Cache struct {
	mu sync.RWMutex
	m  map[string]Entry
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{m: make(map[string]Entry)}
}

// Get returns the entry stored under key.
func (c *Cache) Get(key string) (Entry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.m[key]
	return e, ok
}

// Put stores e under key. First write wins: determinism makes every
// later computation of the same key byte-identical, so overwriting
// could only replace a seeded entry with an equal one.
func (c *Cache) Put(key string, e Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.m[key]; !dup {
		c.m[key] = e
	}
}

// Len reports how many entries the cache holds.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// SeedFromGolden preloads the cache with the golden snapshots: for
// every registry experiment whose snapshot exists in golden, the
// default full-density healthy-machine JobSpec's content address maps
// to the committed bytes. The 36 goldens thus answer their jobs without
// a single engine execution — the warm floor every maiad process starts
// from. It returns the number of entries seeded; a missing snapshot
// just skips its experiment.
func (c *Cache) SeedFromGolden(reg *harness.Registry, golden fs.FS) (int, error) {
	if golden == nil {
		return 0, nil
	}
	seeded := 0
	for i, e := range reg.All() {
		out, err := fs.ReadFile(golden, harness.GoldenName(e.ID))
		if err != nil {
			continue
		}
		spec := harness.JobSpec{Experiment: e.ID}
		c.Put(spec.Hash(), Entry{
			Result: harness.Result{
				ID:    e.ID,
				Title: e.Title,
				Index: i,
				Bytes: len(out),
			}.Wire(),
			Output: out,
			Seeded: true,
		})
		seeded++
	}
	return seeded, nil
}
