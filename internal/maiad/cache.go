package maiad

import (
	"io/fs"
	"sync"

	"maia/internal/harness"
)

// Entry is one content-addressed result: the rendered experiment output
// plus its engine metadata, keyed by the JobSpec hash that produced it.
type Entry struct {
	// Result is the engine metadata in wire form.
	Result harness.Result
	// Output is the experiment's rendered bytes — exactly what a cold
	// run writes, so hits are byte-identical to first executions.
	Output []byte
	// Seeded marks entries loaded from golden snapshots at startup
	// rather than computed by this process.
	Seeded bool
}

// cacheShards is the power-of-two shard count. Content addresses are
// hex SHA-256 strings, so the first character distributes keys
// uniformly across 16 shards.
const cacheShards = 16

// Cache is the content-addressed result store: a sharded in-memory map
// from JobSpec hash to Entry. Experiment output is deterministic — the
// same spec always renders the same bytes — so entries never expire and
// never need invalidation; the maps only grow with distinct jobs.
// Sharding by content-address prefix keeps concurrent request bursts
// from serializing on one lock: a hit under one shard's read lock never
// waits on a store landing in another shard.
type Cache struct {
	shards [cacheShards]cacheShard
}

// cacheShard is one lock-and-map slice of the key space.
type cacheShard struct {
	mu sync.RWMutex
	m  map[string]Entry
}

// shardOf maps a key to its shard by content-address prefix.
func shardOf(key string) int {
	if len(key) == 0 {
		return 0
	}
	switch c := key[0]; {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	default:
		// Non-hex keys (nothing the server produces) still land somewhere.
		return int(c) & (cacheShards - 1)
	}
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]Entry)
	}
	return c
}

// Get returns the entry stored under key.
func (c *Cache) Get(key string) (Entry, bool) {
	s := &c.shards[shardOf(key)]
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.m[key]
	return e, ok
}

// Put stores e under key. First write wins: determinism makes every
// later computation of the same key byte-identical, so overwriting
// could only replace a seeded entry with an equal one.
func (c *Cache) Put(key string, e Entry) {
	s := &c.shards[shardOf(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.m[key]; !dup {
		s.m[key] = e
	}
}

// Len reports how many entries the cache holds.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// SeedFromGolden preloads the cache with the golden snapshots: for
// every registry experiment whose snapshot exists in golden, the
// default full-density healthy-machine JobSpec's content address maps
// to the committed bytes. The 36 goldens thus answer their jobs without
// a single engine execution — the warm floor every maiad process starts
// from. It returns the number of entries seeded; a missing snapshot
// just skips its experiment.
func (c *Cache) SeedFromGolden(reg *harness.Registry, golden fs.FS) (int, error) {
	if golden == nil {
		return 0, nil
	}
	seeded := 0
	for i, e := range reg.All() {
		out, err := fs.ReadFile(golden, harness.GoldenName(e.ID))
		if err != nil {
			continue
		}
		spec := harness.JobSpec{Experiment: e.ID}
		c.Put(spec.Hash(), Entry{
			Result: harness.Result{
				ID:    e.ID,
				Title: e.Title,
				Index: i,
				Bytes: len(out),
			}.Wire(),
			Output: out,
			Seeded: true,
		})
		seeded++
	}
	return seeded, nil
}
