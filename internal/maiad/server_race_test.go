//go:build race

package maiad

import (
	"net/http/httptest"
	"sync"
	"testing"

	"maia/internal/harness"
)

// Under the race detector, hammer the server with overlapping jobs and
// sweeps and check every response against a sequentially-computed
// reference: parallel serving must equal sequential execution
// byte-for-byte.
func TestParallelMatchesSequentialUnderLoad(t *testing.T) {
	ids := []string{"fig7", "fig13", "fig15", "fig17", "table1"}
	want := make(map[string]string, len(ids))
	env, err := harness.JobSpec{Quick: true}.Env()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		exp, ok := harness.Paper().ByID(id)
		if !ok {
			t.Fatalf("unknown experiment %s", id)
		}
		out, err := harness.RenderBytes(exp, env)
		if err != nil {
			t.Fatal(err)
		}
		want[id] = string(out)
	}

	s, err := New(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				id := ids[(c+round)%len(ids)]
				var jr JobResponse
				code := postJob(t, ts.URL+"/v1/jobs", `{"experiment":"`+id+`","quick":true}`, &jr)
				if code != 200 {
					t.Errorf("client %d: status %d for %s", c, code, id)
					return
				}
				if jr.Output != want[id] {
					t.Errorf("client %d: %s output differs from sequential render", c, id)
				}
			}
		}(c)
	}
	wg.Wait()

	body := `{"specs":[{"experiment":"fig7","quick":true},{"experiment":"fig13","quick":true},{"experiment":"fig15","quick":true},{"experiment":"fig17","quick":true},{"experiment":"table1","quick":true}]}`
	var sr SweepResponse
	if code := postJob(t, ts.URL+"/v1/sweeps", body, &sr); code != 200 {
		t.Fatalf("sweep status %d", code)
	}
	for i, id := range ids {
		if sr.Results[i].Output != want[id] {
			t.Errorf("sweep %s differs from sequential render", id)
		}
	}
}
