package maiad

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Latency histogram geometry: power-of-two buckets from 1 us up. The
// top bucket is open-ended; 34 doublings put its floor past 4 hours,
// far beyond any single job on this system.
const (
	histBuckets = 34
	histBaseNs  = int64(time.Microsecond)
)

// bucketFloor returns the lower bound (ns) of bucket i.
func bucketFloor(i int) int64 {
	if i == 0 {
		return 0
	}
	return histBaseNs << (i - 1)
}

// bucketOf returns the bucket index for a latency in ns.
func bucketOf(ns int64) int {
	for i := 1; i < histBuckets; i++ {
		if ns < histBaseNs<<(i-1) {
			return i - 1
		}
	}
	return histBuckets - 1
}

// Histogram is a fixed-geometry latency histogram with cheap concurrent
// observation and quantile estimates by linear interpolation within the
// matched bucket. The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			break
		}
	}
}

// Count returns how many latencies were observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the mean observed latency (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observed latency.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile estimates the p-quantile (0 < p <= 1) by walking the bucket
// cumulative counts and interpolating linearly inside the bucket that
// crosses the rank. The top bucket is clamped to the observed max.
func (h *Histogram) Quantile(p float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := p * float64(n)
	var cum int64
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			lo := bucketFloor(i)
			hi := bucketFloor(i + 1)
			if i == histBuckets-1 || hi > h.max.Load() {
				hi = h.max.Load()
				if hi < lo {
					hi = lo
				}
			}
			frac := (rank - float64(cum)) / float64(c)
			return time.Duration(lo + int64(frac*float64(hi-lo)))
		}
		cum += c
	}
	return time.Duration(h.max.Load())
}

// Metrics is the server's observability state: per-endpoint latency
// histograms, cache and coalescer counters, and the jobs-in-flight
// gauge — everything /metrics and /healthz expose.
type Metrics struct {
	// CacheHits counts jobs answered from the content-addressed cache.
	CacheHits atomic.Int64
	// CacheMisses counts jobs that had to execute the engine.
	CacheMisses atomic.Int64
	// Coalesced counts jobs that piggybacked on an identical in-flight
	// execution instead of running their own.
	Coalesced atomic.Int64
	// EngineRuns counts actual experiment executions — the number the
	// coalescing tests pin: N identical concurrent jobs bump it once.
	EngineRuns atomic.Int64
	// JobErrors counts jobs rejected or failed.
	JobErrors atomic.Int64
	// InFlight is the jobs-currently-executing gauge.
	InFlight atomic.Int64

	start time.Time
	// lat is a copy-on-write map of endpoint label to histogram: lookups
	// (one per request) are a lock-free atomic load, and only the rare
	// first-use of a new label takes mu to publish a fresh copy. The
	// histograms themselves are atomic, so neither Observe nor a /metrics
	// snapshot ever stalls request handling on a shared mutex.
	lat atomic.Pointer[map[string]*Histogram]
	mu  sync.Mutex // serializes copy-on-write publishes of lat
}

// NewMetrics returns a Metrics anchored at now.
func NewMetrics() *Metrics {
	m := &Metrics{start: time.Now()}
	m.lat.Store(&map[string]*Histogram{})
	return m
}

// Endpoint returns (creating on first use) the latency histogram of one
// endpoint label.
func (m *Metrics) Endpoint(name string) *Histogram {
	if h, ok := (*m.lat.Load())[name]; ok {
		return h
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := *m.lat.Load()
	if h, ok := cur[name]; ok {
		return h
	}
	next := make(map[string]*Histogram, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	h := &Histogram{}
	next[name] = h
	m.lat.Store(&next)
	return h
}

// Uptime returns the time since the metrics were created.
func (m *Metrics) Uptime() time.Duration { return time.Since(m.start) }

// EndpointStats is the JSON form of one endpoint's latency summary.
type EndpointStats struct {
	// Count is the number of requests the endpoint served.
	Count int64 `json:"count"`
	// MeanNs through MaxNs summarize the latency distribution in ns.
	MeanNs int64 `json:"mean_ns"`
	P50Ns  int64 `json:"p50_ns"`
	P95Ns  int64 `json:"p95_ns"`
	P99Ns  int64 `json:"p99_ns"`
	MaxNs  int64 `json:"max_ns"`
}

// Snapshot is the JSON form of the whole metrics state.
type Snapshot struct {
	// UptimeNs is the server's age.
	UptimeNs int64 `json:"uptime_ns"`
	// CacheHits through JobErrors mirror the counters.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	Coalesced   int64 `json:"coalesced"`
	EngineRuns  int64 `json:"engine_runs"`
	JobErrors   int64 `json:"job_errors"`
	// JobsInFlight is the current gauge value.
	JobsInFlight int64 `json:"jobs_in_flight"`
	// CacheEntries is the store size (filled in by the server).
	CacheEntries int `json:"cache_entries"`
	// Endpoints maps endpoint label to its latency summary.
	Endpoints map[string]EndpointStats `json:"endpoints"`
}

// Snapshot captures every counter and histogram summary.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		UptimeNs:     m.Uptime().Nanoseconds(),
		CacheHits:    m.CacheHits.Load(),
		CacheMisses:  m.CacheMisses.Load(),
		Coalesced:    m.Coalesced.Load(),
		EngineRuns:   m.EngineRuns.Load(),
		JobErrors:    m.JobErrors.Load(),
		JobsInFlight: m.InFlight.Load(),
		Endpoints:    make(map[string]EndpointStats),
	}
	for name, h := range *m.lat.Load() {
		s.Endpoints[name] = EndpointStats{
			Count:  h.Count(),
			MeanNs: h.Mean().Nanoseconds(),
			P50Ns:  h.Quantile(0.50).Nanoseconds(),
			P95Ns:  h.Quantile(0.95).Nanoseconds(),
			P99Ns:  h.Quantile(0.99).Nanoseconds(),
			MaxNs:  h.Max().Nanoseconds(),
		}
	}
	return s
}

// WriteProm writes the snapshot in Prometheus text exposition format,
// endpoints sorted so the output is deterministic for a given state.
func (s Snapshot) WriteProm(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# TYPE maiad_uptime_seconds gauge\nmaiad_uptime_seconds %.3f\n", float64(s.UptimeNs)/1e9)
	p("# TYPE maiad_cache_hits_total counter\nmaiad_cache_hits_total %d\n", s.CacheHits)
	p("# TYPE maiad_cache_misses_total counter\nmaiad_cache_misses_total %d\n", s.CacheMisses)
	p("# TYPE maiad_coalesced_total counter\nmaiad_coalesced_total %d\n", s.Coalesced)
	p("# TYPE maiad_engine_runs_total counter\nmaiad_engine_runs_total %d\n", s.EngineRuns)
	p("# TYPE maiad_job_errors_total counter\nmaiad_job_errors_total %d\n", s.JobErrors)
	p("# TYPE maiad_jobs_in_flight gauge\nmaiad_jobs_in_flight %d\n", s.JobsInFlight)
	p("# TYPE maiad_cache_entries gauge\nmaiad_cache_entries %d\n", s.CacheEntries)
	names := make([]string, 0, len(s.Endpoints))
	for name := range s.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	p("# TYPE maiad_request_seconds summary\n")
	for _, name := range names {
		e := s.Endpoints[name]
		p("maiad_request_seconds{endpoint=%q,quantile=\"0.5\"} %.6f\n", name, float64(e.P50Ns)/1e9)
		p("maiad_request_seconds{endpoint=%q,quantile=\"0.95\"} %.6f\n", name, float64(e.P95Ns)/1e9)
		p("maiad_request_seconds{endpoint=%q,quantile=\"0.99\"} %.6f\n", name, float64(e.P99Ns)/1e9)
		p("maiad_request_seconds_count{endpoint=%q} %d\n", name, e.Count)
	}
	return err
}
