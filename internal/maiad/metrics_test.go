package maiad

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// Quantiles bracket the observed distribution: a uniform spread puts
// p50 near the middle and p99 near (but never beyond) the max.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.99)
	max := h.Max()
	if p50 < 250*time.Millisecond || p50 > 750*time.Millisecond {
		t.Errorf("p50 = %v, want near 500ms", p50)
	}
	if p99 < p50 || p99 > max {
		t.Errorf("p99 = %v outside [p50 %v, max %v]", p99, p50, max)
	}
	if max != 1000*time.Millisecond {
		t.Errorf("max = %v", max)
	}
	if mean := h.Mean(); mean < 400*time.Millisecond || mean > 600*time.Millisecond {
		t.Errorf("mean = %v, want ~500ms", mean)
	}
}

// Quantiles are monotone in p and safe on an empty histogram.
func TestHistogramEdges(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram returns nonzero stats")
	}
	h.Observe(3 * time.Millisecond)
	for _, p := range []float64{0.5, 0.95, 0.99} {
		q := h.Quantile(p)
		if q <= 0 || q > 3*time.Millisecond {
			t.Errorf("single-sample quantile(%v) = %v", p, q)
		}
	}
	prev := time.Duration(0)
	var u Histogram
	for i := 0; i < 100; i++ {
		u.Observe(time.Duration(1+i*i) * time.Microsecond)
	}
	for _, p := range []float64{0.1, 0.5, 0.9, 0.95, 0.99, 1.0} {
		q := u.Quantile(p)
		if q < prev {
			t.Errorf("quantile not monotone at p=%v: %v < %v", p, q, prev)
		}
		prev = q
	}
}

// The bucket geometry covers the nanosecond-to-hours range without
// losing ordering.
func TestBucketGeometry(t *testing.T) {
	if bucketOf(0) != 0 {
		t.Errorf("bucketOf(0) = %d", bucketOf(0))
	}
	prev := -1
	for _, ns := range []int64{1, 999, 1000, 5e3, 1e6, 1e9, 6e10, 1e13} {
		b := bucketOf(ns)
		if b < prev {
			t.Errorf("bucketOf(%d) = %d < previous %d", ns, b, prev)
		}
		prev = b
		if lo := bucketFloor(b); lo > ns {
			t.Errorf("bucketFloor(%d) = %d > %d", b, lo, ns)
		}
	}
}

// The snapshot and the Prometheus exposition agree with the counters.
func TestMetricsExposition(t *testing.T) {
	m := NewMetrics()
	m.CacheHits.Add(3)
	m.CacheMisses.Add(1)
	m.Coalesced.Add(2)
	m.EngineRuns.Add(1)
	m.Endpoint("jobs").Observe(2 * time.Millisecond)
	m.Endpoint("jobs").Observe(4 * time.Millisecond)

	s := m.Snapshot()
	if s.CacheHits != 3 || s.CacheMisses != 1 || s.Coalesced != 2 || s.EngineRuns != 1 {
		t.Errorf("snapshot counters: %+v", s)
	}
	ep, ok := s.Endpoints["jobs"]
	if !ok || ep.Count != 2 || ep.P50Ns <= 0 {
		t.Errorf("snapshot endpoint: %+v", ep)
	}

	var b strings.Builder
	s.CacheEntries = 36
	if err := s.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"maiad_cache_hits_total 3",
		"maiad_cache_misses_total 1",
		"maiad_coalesced_total 2",
		"maiad_engine_runs_total 1",
		"maiad_cache_entries 36",
		`maiad_request_seconds{endpoint="jobs",quantile="0.5"}`,
		`maiad_request_seconds_count{endpoint="jobs"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
}

// Endpoint's copy-on-write registry: the same label always resolves to
// the same histogram, lookups race safely against first-use creation
// and snapshots, and the steady-state lookup allocates nothing.
func TestEndpointStableUnderConcurrency(t *testing.T) {
	m := NewMetrics()
	labels := []string{"job", "metrics", "healthz", "experiments"}
	first := make(map[string]*Histogram)
	for _, l := range labels {
		first[l] = m.Endpoint(l)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l := labels[i%len(labels)]
				h := m.Endpoint(l)
				if h != first[l] {
					t.Errorf("worker %d: label %q resolved to a different histogram", w, l)
					return
				}
				h.Observe(time.Microsecond)
				if i%50 == 0 {
					m.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := m.Snapshot()
	var total int64
	for _, e := range snap.Endpoints {
		total += e.Count
	}
	if total != 8*200 {
		t.Fatalf("observed %d latencies, want %d", total, 8*200)
	}
}
