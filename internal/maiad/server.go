// Package maiad is the experiments-as-a-service control plane: a
// long-running HTTP/JSON server over the typed harness.Registry.
// Clients submit jobs as canonical JobSpecs — experiment ID, quick and
// rack-node shaping, fault plan and seed, model overrides — and the
// server answers from a content-addressed result cache keyed by the
// spec's SHA-256. The committed golden snapshots seed the cache at
// startup, identical in-flight jobs coalesce onto one engine execution,
// sweep batches ride the existing parallel experiment engine, and every
// endpoint feeds latency histograms and cache counters exposed at
// /metrics and /healthz.
//
// Endpoints:
//
//	POST /v1/jobs         run (or fetch) one JobSpec; ?trace=summary|chrome attaches simtrace output
//	POST /v1/sweeps       run a batch of JobSpecs through the parallel engine
//	POST /v1/fleet        run (or fetch) one fleet-section JobSpec (schema v2 fleet block)
//	GET  /v1/jobs/{key}   fetch a result by content address (404 on cold keys)
//	GET  /v1/fleet/{key}  fetch a fleet result by content address
//	GET  /v1/experiments  list the registry with each experiment's default job key
//	GET  /metrics         Prometheus text (or ?format=json snapshot)
//	GET  /healthz         liveness, uptime, jobs in flight
//
// Fleet jobs (experiments in the registry's "fleet" section, with or
// without a v2 fleet block) route exclusively through /v1/fleet; they
// share the same content-addressed cache, coalescer, and worker pool as
// plain jobs but report their latency under their own endpoint labels.
package maiad

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"runtime"
	"time"

	"maia/internal/harness"
	"maia/internal/simtrace"
)

// ResponseSchemaVersion is the maiad HTTP response wire version.
const ResponseSchemaVersion = 1

// The cache-status values a JobResponse reports.
const (
	// CacheHit: answered from the content-addressed store.
	CacheHit = "hit"
	// CacheMiss: executed by the engine on this request.
	CacheMiss = "miss"
	// CacheCoalesced: piggybacked on an identical in-flight execution.
	CacheCoalesced = "coalesced"
	// CacheBypass: executed fresh because the request asked for a
	// per-job trace (trace spans exist only for real executions).
	CacheBypass = "bypass"
)

// Config configures a Server.
type Config struct {
	// Registry resolves experiment IDs; nil defaults to harness.Paper().
	Registry *harness.Registry
	// Golden, when non-nil, seeds the cache from golden snapshots.
	Golden fs.FS
	// Workers bounds concurrent engine executions (the worker pool);
	// <= 0 defaults to GOMAXPROCS.
	Workers int
	// Logf, when non-nil, receives one line per notable server event.
	Logf func(format string, args ...any)
}

// Server is the maiad control plane: registry + cache + coalescer +
// bounded worker pool + metrics behind an http.Handler.
type Server struct {
	reg     *harness.Registry
	cache   *Cache
	group   Group
	metrics *Metrics
	sem     chan struct{}
	logf    func(format string, args ...any)
}

// New builds a Server from cfg and seeds its cache.
func New(cfg Config) (*Server, error) {
	reg := cfg.Registry
	if reg == nil {
		reg = harness.Paper()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Server{
		reg:     reg,
		cache:   NewCache(),
		metrics: NewMetrics(),
		sem:     make(chan struct{}, workers),
		logf:    logf,
	}
	seeded, err := s.cache.SeedFromGolden(reg, cfg.Golden)
	if err != nil {
		return nil, err
	}
	s.logf("maiad: %d experiments registered, %d cache entries seeded, %d workers",
		reg.Len(), seeded, workers)
	return s, nil
}

// Metrics exposes the server's metrics (tests and embedders).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Cache exposes the server's result store (tests and embedders).
func (s *Server) Cache() *Cache { return s.cache }

// Handler returns the routed http.Handler serving every endpoint.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.timed("jobs", s.handleJob))
	mux.HandleFunc("POST /v1/sweeps", s.timed("sweeps", s.handleSweep))
	mux.HandleFunc("POST /v1/fleet", s.timed("fleet", s.handleFleet))
	mux.HandleFunc("GET /v1/jobs/{key}", s.timed("lookup", s.handleLookup))
	mux.HandleFunc("GET /v1/fleet/{key}", s.timed("fleet_lookup", s.handleLookup))
	mux.HandleFunc("GET /v1/experiments", s.timed("experiments", s.handleExperiments))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// timed wraps a handler with the endpoint's latency histogram.
func (s *Server) timed(name string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.metrics.Endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		hist.Observe(time.Since(start))
	}
}

// JobResponse is the answer to one job: the spec as normalized, its
// content address, where the bytes came from, the engine metadata, and
// the rendered output.
type JobResponse struct {
	// SchemaVersion is ResponseSchemaVersion.
	SchemaVersion int `json:"schema_version"`
	// Key is the job's content address (the normalized spec's SHA-256).
	Key string `json:"key"`
	// Spec echoes the normalized job.
	Spec harness.JobSpec `json:"spec"`
	// Cache reports how the job was answered (hit/miss/coalesced/bypass).
	Cache string `json:"cache"`
	// Seeded marks output that came from a committed golden snapshot.
	Seeded bool `json:"seeded,omitempty"`
	// Result is the engine metadata in wire form.
	Result harness.Result `json:"result"`
	// Output is the experiment's rendered text.
	Output string `json:"output"`
	// TraceSummary and Trace carry per-job simtrace output on request.
	TraceSummary string          `json:"trace_summary,omitempty"`
	Trace        json.RawMessage `json:"trace,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx answer.
type ErrorResponse struct {
	// SchemaVersion is ResponseSchemaVersion.
	SchemaVersion int `json:"schema_version"`
	// Code classifies the failure (the typed-error taxonomy).
	Code string `json:"code"`
	// Error is the human-readable detail.
	Error string `json:"error"`
}

// errFleetEndpoint rejects fleet jobs posted to the plain-job endpoints.
var errFleetEndpoint = errors.New("fleet jobs are served by POST /v1/fleet")

// errorCode maps a typed validation error to its wire code.
func errorCode(err error) (string, int) {
	switch {
	case errors.Is(err, harness.ErrUnknownExperiment):
		return "unknown_experiment", http.StatusNotFound
	case errors.Is(err, harness.ErrBadNodes):
		return "invalid_nodes", http.StatusBadRequest
	case errors.Is(err, harness.ErrUnknownFaultPlan):
		return "unknown_fault_plan", http.StatusBadRequest
	case errors.Is(err, harness.ErrBadModelOverride):
		return "invalid_model_override", http.StatusBadRequest
	case errors.Is(err, harness.ErrBadSchemaVersion):
		return "unsupported_schema_version", http.StatusBadRequest
	case errors.Is(err, harness.ErrBadSeed):
		return "invalid_seed", http.StatusBadRequest
	case errors.Is(err, harness.ErrBadFleetNodes):
		return "invalid_fleet_nodes", http.StatusBadRequest
	case errors.Is(err, harness.ErrBadFleetDuration):
		return "invalid_fleet_duration", http.StatusBadRequest
	case errors.Is(err, harness.ErrBadFleetScheduler):
		return "unknown_fleet_scheduler", http.StatusBadRequest
	case errors.Is(err, harness.ErrBadFleetMTBF):
		return "unknown_fleet_mtbf", http.StatusBadRequest
	case errors.Is(err, harness.ErrBadFleetHealth):
		return "invalid_fleet_health", http.StatusBadRequest
	case errors.Is(err, harness.ErrBadFleetExperiment):
		return "fleet_not_applicable", http.StatusBadRequest
	case errors.Is(err, errFleetEndpoint):
		return "fleet_endpoint", http.StatusBadRequest
	}
	return "bad_request", http.StatusBadRequest
}

// fail writes the typed error response and counts it.
func (s *Server) fail(w http.ResponseWriter, err error) {
	s.metrics.JobErrors.Add(1)
	code, status := errorCode(err)
	writeJSON(w, status, ErrorResponse{
		SchemaVersion: ResponseSchemaVersion,
		Code:          code,
		Error:         err.Error(),
	})
}

// writeJSON writes one JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// decodeSpec reads and validates one JobSpec from an HTTP body.
func (s *Server) decodeSpec(r io.Reader) (harness.JobSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec harness.JobSpec
	if err := dec.Decode(&spec); err != nil {
		return harness.JobSpec{}, fmt.Errorf("malformed job spec: %w", err)
	}
	if err := spec.Validate(s.reg); err != nil {
		return harness.JobSpec{}, err
	}
	return spec.Normalize(), nil
}

// isFleetSpec reports whether a validated spec is a fleet job: it
// carries a v2 fleet block, or its experiment lives in the registry's
// "fleet" section (fleet-section jobs are fleet jobs even with every
// knob at its default).
func (s *Server) isFleetSpec(spec harness.JobSpec) bool {
	if spec.Fleet != nil {
		return true
	}
	e, ok := s.reg.ByID(spec.Experiment)
	return ok && e.Section == "fleet"
}

// handleJob serves POST /v1/jobs: cache, then coalesced execution.
// Fleet jobs are redirected to their own endpoint so fleet latency
// never pollutes the plain-job histograms.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	spec, err := s.decodeSpec(r.Body)
	if err != nil {
		s.fail(w, err)
		return
	}
	if s.isFleetSpec(spec) {
		s.fail(w, fmt.Errorf("%w: %q is a fleet job", errFleetEndpoint, spec.Experiment))
		return
	}
	s.answer(w, r, spec)
}

// handleFleet serves POST /v1/fleet: the fleet-scenario mirror of
// /v1/jobs. It accepts only fleet jobs (see isFleetSpec) and shares the
// content-addressed cache, the coalescer, and the worker pool with the
// plain-job path, so an identical fleet spec is computed exactly once
// no matter which clients race it.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	spec, err := s.decodeSpec(r.Body)
	if err != nil {
		s.fail(w, err)
		return
	}
	if !s.isFleetSpec(spec) {
		s.fail(w, fmt.Errorf("%w: %q is not a fleet experiment; POST it to /v1/jobs",
			harness.ErrBadFleetExperiment, spec.Experiment))
		return
	}
	s.answer(w, r, spec)
}

// answer serves one validated, normalized spec: per-job trace bypass,
// then cache, then coalesced execution — the shared tail of /v1/jobs
// and /v1/fleet.
func (s *Server) answer(w http.ResponseWriter, r *http.Request, spec harness.JobSpec) {
	key := spec.Hash()

	if trace := r.URL.Query().Get("trace"); trace != "" {
		s.handleTracedJob(w, spec, key, trace)
		return
	}

	if e, ok := s.cache.Get(key); ok {
		s.metrics.CacheHits.Add(1)
		writeJSON(w, http.StatusOK, s.response(key, spec, CacheHit, e))
		return
	}
	e, shared, err := s.group.Do(key, func() (Entry, error) {
		return s.execute(spec, nil)
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	status := CacheMiss
	if shared {
		s.metrics.Coalesced.Add(1)
		status = CacheCoalesced
	} else {
		s.metrics.CacheMisses.Add(1)
	}
	writeJSON(w, http.StatusOK, s.response(key, spec, status, e))
}

// handleTracedJob serves a job that asked for its simtrace output:
// always a fresh execution (spans only exist for real runs), though the
// byte-identical output still lands in the cache for everyone else.
func (s *Server) handleTracedJob(w http.ResponseWriter, spec harness.JobSpec, key, mode string) {
	if mode != "summary" && mode != "chrome" {
		s.fail(w, fmt.Errorf("unknown trace mode %q (want summary or chrome)", mode))
		return
	}
	tracer := simtrace.New()
	tracer.SetProcess(spec.Experiment)
	e, err := s.execute(spec, tracer)
	if err != nil {
		s.fail(w, err)
		return
	}
	resp := s.response(key, spec, CacheBypass, e)
	if mode == "summary" {
		var buf bytes.Buffer
		if err := tracer.Summary().WriteText(&buf); err != nil {
			s.fail(w, err)
			return
		}
		resp.TraceSummary = buf.String()
	} else {
		var buf bytes.Buffer
		if err := tracer.WriteChrome(&buf); err != nil {
			s.fail(w, err)
			return
		}
		resp.Trace = json.RawMessage(buf.Bytes())
	}
	writeJSON(w, http.StatusOK, resp)
}

// response assembles a JobResponse from a cache entry.
func (s *Server) response(key string, spec harness.JobSpec, status string, e Entry) JobResponse {
	return JobResponse{
		SchemaVersion: ResponseSchemaVersion,
		Key:           key,
		Spec:          spec,
		Cache:         status,
		Seeded:        e.Seeded,
		Result:        e.Result,
		Output:        string(e.Output),
	}
}

// execute runs one job on the bounded worker pool and stores the result.
func (s *Server) execute(spec harness.JobSpec, tracer *simtrace.Tracer) (Entry, error) {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	s.metrics.InFlight.Add(1)
	defer s.metrics.InFlight.Add(-1)

	exp, ok := s.reg.ByID(spec.Experiment)
	if !ok {
		return Entry{}, fmt.Errorf("%w: %q", harness.ErrUnknownExperiment, spec.Experiment)
	}
	env, err := spec.Env()
	if err != nil {
		return Entry{}, err
	}
	env.Tracer = tracer
	s.metrics.EngineRuns.Add(1)
	start := time.Now()
	out, err := harness.RenderBytes(exp, env)
	wall := time.Since(start)
	if err != nil {
		s.logf("maiad: job %s (%s) failed: %v", spec.Hash()[:12], spec.Experiment, err)
		return Entry{}, err
	}
	e := Entry{
		Result: harness.Result{
			ID:    exp.ID,
			Title: exp.Title,
			Wall:  wall,
			Bytes: len(out),
		}.Wire(),
		Output: out,
	}
	s.cache.Put(spec.Hash(), e)
	return e, nil
}

// SweepRequest is the body of POST /v1/sweeps: a benchmark matrix.
type SweepRequest struct {
	// Specs are the jobs to run; identical env shaping (everything but
	// the experiment ID) batches through one parallel engine pass.
	Specs []harness.JobSpec `json:"specs"`
}

// SweepResponse answers a sweep with one JobResponse per spec, in
// request order.
type SweepResponse struct {
	// SchemaVersion is ResponseSchemaVersion.
	SchemaVersion int `json:"schema_version"`
	// Results holds one answer per requested spec, in order.
	Results []JobResponse `json:"results"`
}

// handleSweep serves POST /v1/sweeps: cache-filters the batch, groups
// the cold jobs by environment, and runs each group through the
// existing parallel experiment engine in one pass.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req SweepRequest
	if err := dec.Decode(&req); err != nil {
		s.fail(w, fmt.Errorf("malformed sweep request: %w", err))
		return
	}
	if len(req.Specs) == 0 {
		s.fail(w, errors.New("empty sweep: want specs to run"))
		return
	}
	specs := make([]harness.JobSpec, len(req.Specs))
	for i, spec := range req.Specs {
		if err := spec.Validate(s.reg); err != nil {
			s.fail(w, fmt.Errorf("specs[%d]: %w", i, err))
			return
		}
		specs[i] = spec.Normalize()
		if s.isFleetSpec(specs[i]) {
			s.fail(w, fmt.Errorf("specs[%d]: %w: %q is a fleet job", i, errFleetEndpoint, specs[i].Experiment))
			return
		}
	}

	resp := SweepResponse{
		SchemaVersion: ResponseSchemaVersion,
		Results:       make([]JobResponse, len(specs)),
	}
	// Answer what the cache already holds; group the rest by their env
	// signature (the spec with the experiment blanked) so each group is
	// one registry subset under one environment — exactly the parallel
	// engine's contract.
	type group struct {
		envSpec harness.JobSpec
		idx     []int
	}
	groups := make(map[string]*group)
	order := []string{}
	for i, spec := range specs {
		key := spec.Hash()
		if e, ok := s.cache.Get(key); ok {
			s.metrics.CacheHits.Add(1)
			resp.Results[i] = s.response(key, spec, CacheHit, e)
			continue
		}
		envSpec := spec
		envSpec.Experiment = ""
		sig := string(envSpec.MarshalCanonical())
		g, ok := groups[sig]
		if !ok {
			g = &group{envSpec: envSpec}
			groups[sig] = g
			order = append(order, sig)
		}
		g.idx = append(g.idx, i)
	}
	for _, sig := range order {
		g := groups[sig]
		if err := s.runSweepGroup(specs, g.envSpec, g.idx, &resp); err != nil {
			s.fail(w, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// runSweepGroup executes one environment-group of a sweep on the
// parallel engine and fills the group's slots in resp. The engine
// writes every experiment's bytes to one buffer in slice order, so the
// per-experiment outputs are recovered by walking Result.Bytes offsets.
func (s *Server) runSweepGroup(specs []harness.JobSpec, envSpec harness.JobSpec, idx []int, resp *SweepResponse) error {
	env, err := envSpec.Env()
	if err != nil {
		return err
	}
	exps := make([]harness.Experiment, len(idx))
	for j, i := range idx {
		exp, ok := s.reg.ByID(specs[i].Experiment)
		if !ok {
			return fmt.Errorf("%w: %q", harness.ErrUnknownExperiment, specs[i].Experiment)
		}
		exps[j] = exp
	}

	s.sem <- struct{}{}
	s.metrics.InFlight.Add(int64(len(idx)))
	var buf bytes.Buffer
	s.metrics.EngineRuns.Add(int64(len(idx)))
	results, err := harness.RunExperiments(&buf, env, exps, cap(s.sem))
	s.metrics.InFlight.Add(int64(-len(idx)))
	<-s.sem
	if err != nil {
		return err
	}

	off := 0
	for j, i := range idx {
		res := results[j]
		out := buf.Bytes()[off : off+res.Bytes]
		off += res.Bytes
		e := Entry{
			Result: harness.Result{
				ID:    res.ID,
				Title: res.Title,
				Wall:  res.Wall,
				Bytes: res.Bytes,
			}.Wire(),
			Output: append([]byte(nil), out...),
		}
		key := specs[i].Hash()
		s.cache.Put(key, e)
		s.metrics.CacheMisses.Add(1)
		resp.Results[i] = s.response(key, specs[i], CacheMiss, e)
	}
	return nil
}

// handleLookup serves GET /v1/jobs/{key}: a pure cache read.
func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	e, ok := s.cache.Get(key)
	if !ok {
		s.metrics.CacheMisses.Add(1)
		writeJSON(w, http.StatusNotFound, ErrorResponse{
			SchemaVersion: ResponseSchemaVersion,
			Code:          "unknown_key",
			Error:         fmt.Sprintf("no result under key %q; POST the spec to /v1/jobs to compute it", key),
		})
		return
	}
	s.metrics.CacheHits.Add(1)
	writeJSON(w, http.StatusOK, JobResponse{
		SchemaVersion: ResponseSchemaVersion,
		Key:           key,
		Cache:         CacheHit,
		Seeded:        e.Seeded,
		Result:        e.Result,
		Output:        string(e.Output),
	})
}

// ExperimentInfo is one row of GET /v1/experiments.
type ExperimentInfo struct {
	// ID, Title, Section, Kind mirror the registry metadata.
	ID      string `json:"id"`
	Title   string `json:"title"`
	Section string `json:"section"`
	Kind    string `json:"kind"`
	// DefaultKey is the content address of the experiment's default
	// full-density healthy-machine job — the key the goldens seed.
	DefaultKey string `json:"default_key"`
	// Cached reports whether that default job is already in the cache.
	Cached bool `json:"cached"`
}

// handleExperiments serves GET /v1/experiments.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	all := s.reg.All()
	infos := make([]ExperimentInfo, 0, len(all))
	for _, e := range all {
		key := harness.JobSpec{Experiment: e.ID}.Hash()
		_, cached := s.cache.Get(key)
		infos = append(infos, ExperimentInfo{
			ID:         e.ID,
			Title:      e.Title,
			Section:    e.Section,
			Kind:       e.Kind.String(),
			DefaultKey: key,
			Cached:     cached,
		})
	}
	writeJSON(w, http.StatusOK, infos)
}

// handleMetrics serves GET /metrics: Prometheus text by default, the
// JSON snapshot with ?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.Snapshot()
	snap.CacheEntries = s.cache.Len()
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	snap.WriteProm(w)
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	// Status is "ok" whenever the server can answer at all.
	Status string `json:"status"`
	// UptimeNs is the server's age.
	UptimeNs int64 `json:"uptime_ns"`
	// JobsInFlight is the current execution gauge.
	JobsInFlight int64 `json:"jobs_in_flight"`
	// CacheEntries is the store size.
	CacheEntries int `json:"cache_entries"`
	// Experiments is the registry size.
	Experiments int `json:"experiments"`
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:       "ok",
		UptimeNs:     s.metrics.Uptime().Nanoseconds(),
		JobsInFlight: s.metrics.InFlight.Load(),
		CacheEntries: s.cache.Len(),
		Experiments:  s.reg.Len(),
	})
}
