package maiad

import "sync"

// call is one in-flight execution a Group is deduplicating.
type call struct {
	wg  sync.WaitGroup
	val Entry
	err error
}

// Group coalesces concurrent executions that share a content address:
// the first caller of a key runs the function, every concurrent
// duplicate blocks and receives the leader's result. This is the
// serving-path guarantee that N identical requests arriving together
// cost one engine execution, not N — the complement of the cache, which
// only helps once a result is already stored.
//
// Completed keys are forgotten immediately: later requests for the same
// key go to the cache instead, so a Group never grows beyond the number
// of distinct jobs in flight.
type Group struct {
	mu sync.Mutex
	m  map[string]*call
}

// Do executes fn for key, unless an execution for key is already in
// flight, in which case it waits for that one and shares its result.
// The returned flag reports whether the value came from another
// caller's execution (true for every follower, false for the leader).
func (g *Group) Do(key string, fn func() (Entry, error)) (Entry, bool, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, true, c.err
	}
	c := &call{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	c.wg.Done()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return c.val, false, c.err
}

// InFlight reports how many distinct keys are currently executing.
func (g *Group) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}
